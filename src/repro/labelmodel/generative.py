"""The generative label model trained without ground truth.

``GenerativeModel`` implements the paper's Section 2.2 model: the joint
``p_w(Λ, Y) = Z_w^{-1} exp(Σ_i wᵀ φ_i(Λ_i, y_i))`` over labeling-function
outputs and latent labels, with labeling-propensity, accuracy, and pairwise
correlation factors.  Two estimators are provided:

* ``method="em"`` (default) — expectation–maximization on the marginal
  likelihood of the observed votes.  The E-step computes the exact label
  posterior ``P(y_i | Λ_i, w)`` (closed form, because the propensity and
  correlation factors do not involve ``y``); the M-step re-estimates each
  labeling function's accuracy from its expected agreement with the latent
  label.  Modeled correlations are handled with an explicit double-counting
  correction: when computing the posterior, each LF's weight is divided by
  one plus the number of its modeled correlation partners that cast the same
  vote on that data point, so a family of near-duplicate LFs counts roughly
  once (this resolves the paper's Example 3.1 pathology).  EM is
  deterministic, fast, and robust on the sparse low-coverage matrices real
  LF suites produce.

* ``method="cd"`` — the paper's original optimization strategy: stochastic
  gradient steps on the marginal likelihood interleaved with Gibbs sampling
  (contrastive divergence), conditioning on the abstention pattern.  Retained
  for fidelity and for denser matrices; it is noisier on very low-coverage
  LFs.

After training, the probabilistic labels are ``Ỹ_i = p_ŵ(y_i = +1 | Λ_i)``.

**Label conventions.**  Two vocabularies are supported, selected by the
task's ``cardinality``:

* *binary* (``cardinality=2``, the paper's primary setting) — signed labels
  ``{-1, +1}`` with ``0`` = abstain; ``predict_proba`` returns the
  positive-class probability, shape ``(m,)``.
* *categorical* (``cardinality=k > 2``, e.g. the crowdsourcing task) —
  classes ``1..k`` with ``0`` = abstain; ``predict_proba`` returns the full
  posterior distribution, shape ``(m, k)``.  The accuracy factor is the
  symmetric (Dawid–Skene-style) parameterization: each LF has one accuracy
  ``a_j`` with errors uniform over the ``k - 1`` wrong classes, giving
  accuracy weight ``w_j = 0.5·log(a_j (k-1)/(1-a_j))`` and posterior
  ``P(y_i = c | Λ_i) ∝ π_c · exp(2 Σ_{j: Λ_{i,j}=c} w_j)``.  For ``k = 2``
  this reduces *exactly* to the binary sigmoid, so the binary estimator is
  kept as the (bit-compatible) specialization and categorical inputs run the
  k-ary generalization of the same damped EM — including the per-iteration
  class-balance re-estimation, which becomes a damped k-vector update.

Both storage backends of :class:`repro.labeling.LabelMatrix` are supported:
dense inputs run the vectorized dense estimator, CSR inputs
(:class:`repro.labeling.sparse.SparseLabelMatrix`) run the same EM updates as
sparse matvecs and per-column masked reductions over the non-abstain entries
— O(nnz) per epoch instead of O(m·n), with numerically identical output.
This holds for the categorical estimator too: both storages reduce the label
matrix to its non-abstain ``(row, column, class)`` triples and run identical
flattened-``bincount`` updates over them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.discriminative.adam import AdamOptimizer
from repro.exceptions import LabelModelError, NotFittedError
from repro.labeling.matrix import LabelMatrix
from repro.labeling.sparse import (
    SparseLabelMatrix,
    as_sparse_storage,
    class_vote_counts,
    intersect_sorted,
)
from repro.labelmodel.factor_graph import FactorGraphSpec
from repro.labelmodel.gibbs import GibbsSampler
from repro.labelmodel.kernels import (
    SamplerPlan,
    SamplerWorkspace,
    resolve_kernel,
    run_joint_chain,
)
from repro.types import ABSTAIN, NEGATIVE, POSITIVE, probs_to_labels
from repro.utils.mathutils import log_odds_to_accuracy, sigmoid, softmax
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class TrainingHistory:
    """Diagnostics recorded during training."""

    epochs: int = 0
    weight_deltas: list[float] = field(default_factory=list)
    mean_accuracy_weights: list[float] = field(default_factory=list)


def _as_array(label_matrix: LabelMatrix | np.ndarray) -> np.ndarray:
    if isinstance(label_matrix, LabelMatrix):
        return label_matrix.values
    return np.asarray(label_matrix, dtype=np.int64)


class GenerativeModel:
    """Generative model over labeling functions (accuracies + correlations).

    Parameters
    ----------
    method:
        ``"em"`` (default) or ``"cd"``; see the module docstring.
    epochs:
        EM iterations, or passes over the label matrix for CD.
    step_size:
        CD learning rate (ignored by EM).
    batch_size:
        CD minibatch size (ignored by EM).
    reg_strength:
        CD ℓ2 pull toward the initial weights (ignored by EM).
    cd_sweeps:
        Gibbs sweeps per CD gradient step.
    accuracy_init:
        Prior labeling-function accuracy used for initialization and, in EM,
        as the center of the Beta-like smoothing.
    smoothing:
        EM pseudo-count smoothing of the accuracy estimates (stabilizes LFs
        with very few votes).
    learn_propensity:
        Whether to fill in the labeling-propensity weights from the empirical
        per-LF coverage after training.  These never affect the label
        posterior; they are recorded so the joint model is fully
        parameterized.
    class_balance:
        Optional known positive-class fraction.  When given, the class-prior
        weight is fixed at ``0.5·logit(class_balance)`` and applied to every
        row's posterior.  When ``None`` EM re-estimates the balance each
        iteration from the mean posterior (damped and clipped away from 0/1)
        and records the final value in ``class_prior_weight_``; the estimated
        prior calibrates only the rows with *no* votes — covered rows' vote
        scores already reflect the empirical balance, and shifting them by an
        explicit prior double-counts it (estimating from prior-shifted
        posteriors even runs away to a degenerate all-one-class solution on
        imbalanced tasks).  For CD the prior stays 0 unless a balance is
        supplied.  On categorical tasks pass a length-``k`` probability
        vector instead of a scalar; the same supplied-vs-estimated semantics
        apply, with the (damped, renormalized) estimate recorded in
        ``class_priors_``.
    non_adversarial:
        Clamp LF accuracies at or above chance — 50% for binary tasks,
        ``1/k`` for categorical ones (the paper's standing assumption
        ``w*_j > 0``).  A labeling function can be learned to be useless but
        not actively inverted.
    cardinality:
        Number of classes.  ``None`` (default) reads it off a
        :class:`LabelMatrix` input and falls back to 2 for raw arrays; pass
        it explicitly when fitting raw categorical arrays.
    gibbs_kernel:
        Sampling kernel for the CD estimator's Gibbs chains (ignored by EM,
        which samples nothing): ``"auto"`` (the vectorized plan-based kernel
        of :mod:`repro.labelmodel.kernels`; the default), ``"vectorized"``,
        or ``"reference"`` (the exact per-column loop).  With the vectorized
        kernel the sampler plan is compiled once per fit and each minibatch
        derives its row view from it; the scratch workspace is likewise
        allocated once and reused across every epoch.
    seed:
        RNG seed (or generator) for reproducible Gibbs chains.
    """

    def __init__(
        self,
        method: str = "em",
        epochs: int = 30,
        step_size: float = 0.05,
        batch_size: int = 256,
        reg_strength: float = 0.05,
        cd_sweeps: int = 1,
        accuracy_init: float = 0.7,
        smoothing: float = 2.0,
        damping: float = 0.5,
        max_accuracy: float = 0.95,
        learn_propensity: bool = True,
        class_balance: Optional[float | Sequence[float]] = None,
        non_adversarial: bool = True,
        cardinality: Optional[int] = None,
        gibbs_kernel: str = "auto",
        seed: SeedLike = 0,
    ) -> None:
        if method not in ("em", "cd"):
            raise LabelModelError(f"method must be 'em' or 'cd', got {method!r}")
        if epochs <= 0:
            raise LabelModelError(f"epochs must be positive, got {epochs}")
        if step_size <= 0:
            raise LabelModelError(f"step_size must be positive, got {step_size}")
        if not 0.5 < accuracy_init < 1.0:
            raise LabelModelError(
                f"accuracy_init must lie in (0.5, 1.0), got {accuracy_init}"
            )
        if smoothing < 0:
            raise LabelModelError(f"smoothing must be >= 0, got {smoothing}")
        if not 0.0 <= damping < 1.0:
            raise LabelModelError(f"damping must lie in [0, 1), got {damping}")
        if not 0.5 < max_accuracy < 1.0:
            raise LabelModelError(f"max_accuracy must lie in (0.5, 1), got {max_accuracy}")
        if class_balance is not None:
            balance_array = np.asarray(class_balance, dtype=float)
            if balance_array.ndim == 0:
                if not 0.0 < float(balance_array) < 1.0:
                    raise LabelModelError(
                        f"class_balance must lie in (0, 1) when given, got {class_balance}"
                    )
            elif balance_array.ndim != 1 or balance_array.size < 2 or np.any(
                balance_array <= 0.0
            ):
                raise LabelModelError(
                    "class_balance must be a scalar in (0, 1) or a vector of positive "
                    f"per-class weights, got {class_balance!r}"
                )
        if cardinality is not None and cardinality < 2:
            raise LabelModelError(f"cardinality must be >= 2 when given, got {cardinality}")
        self.method = method
        self.epochs = epochs
        self.step_size = step_size
        self.batch_size = batch_size
        self.reg_strength = reg_strength
        self.cd_sweeps = cd_sweeps
        self.accuracy_init = accuracy_init
        self.smoothing = smoothing
        self.damping = damping
        self.max_accuracy = max_accuracy
        self.learn_propensity = learn_propensity
        self.class_balance = class_balance
        self.non_adversarial = non_adversarial
        self.cardinality = cardinality
        self.gibbs_kernel = resolve_kernel(gibbs_kernel)
        self.seed = seed

        self.spec: Optional[FactorGraphSpec] = None
        self.weights: Optional[np.ndarray] = None
        self.class_prior_weight_: float = 0.0
        #: Fitted class prior of a categorical task: a length-``k``
        #: probability vector (``None`` on binary tasks, which record the
        #: scalar ``class_prior_weight_`` instead).
        self.class_priors_: Optional[np.ndarray] = None
        self.history = TrainingHistory()

    # ------------------------------------------------------------------ fitting
    def fit(
        self,
        label_matrix: LabelMatrix | np.ndarray,
        correlations: Iterable[tuple[int, int]] = (),
    ) -> "GenerativeModel":
        """Fit the model to a label matrix, optionally with correlation pairs ``C``.

        Accepts dense arrays, dense- or sparse-backed :class:`LabelMatrix`
        wrappers, raw :class:`SparseLabelMatrix` storage, and scipy sparse
        matrices.  Sparse inputs are trained through sparse matvecs and
        masked reductions over the non-abstain entries only — the dense
        ``(m, n)`` matrix is never materialized.

        The label vocabulary follows the resolved cardinality (see the
        ``cardinality`` parameter): signed ``{-1, 0, +1}`` for binary tasks,
        ``{0, 1, .., k}`` for categorical ones.
        """
        cardinality = self._resolve_cardinality(label_matrix)
        sparse = as_sparse_storage(label_matrix)
        if sparse is not None:
            shape = sparse.shape
            matrix = None
        else:
            matrix = _as_array(label_matrix)
            if matrix.ndim != 2:
                raise LabelModelError(
                    f"label matrix must be non-empty 2-D, got shape {matrix.shape}"
                )
            shape = matrix.shape
        if shape[0] == 0 or shape[1] == 0:
            raise LabelModelError(f"label matrix must be non-empty 2-D, got shape {shape}")
        self._validate_label_values(sparse, matrix, cardinality)
        spec = FactorGraphSpec(
            num_lfs=shape[1], correlations=correlations, cardinality=cardinality
        )
        class_priors: Optional[np.ndarray] = None
        class_prior = 0.0
        if self.method == "em":
            if cardinality > 2:
                weights, class_priors = self._fit_em_categorical(
                    spec, sparse if sparse is not None else matrix
                )
            elif sparse is not None:
                weights, class_prior = self._fit_em_sparse(spec, sparse)
            else:
                weights, class_prior = self._fit_em(spec, matrix)
        else:
            weights, cd_prior = self._fit_cd(spec, sparse if sparse is not None else matrix)
            if cardinality > 2:
                class_priors = np.asarray(cd_prior, dtype=float)
            else:
                class_prior = float(cd_prior)

        if self.learn_propensity:
            if sparse is not None:
                empirical = sparse.col_nnz() / shape[0]
            else:
                empirical = (matrix != ABSTAIN).mean(axis=0)
            coverage = np.clip(empirical, 1e-6, 1 - 1e-6)
            weights[spec.layout.propensity_slice] = 0.5 * np.log(coverage / (1.0 - coverage))

        self.spec = spec
        self.weights = weights
        self.class_prior_weight_ = float(class_prior)
        self.class_priors_ = class_priors
        return self

    def _resolve_cardinality(self, label_matrix) -> int:
        """Explicit ``cardinality`` wins; else a ``LabelMatrix``'s; else binary."""
        if self.cardinality is not None:
            return self.cardinality
        if isinstance(label_matrix, LabelMatrix):
            return label_matrix.cardinality
        return 2

    def _validate_label_values(
        self,
        sparse: Optional[SparseLabelMatrix],
        matrix: Optional[np.ndarray],
        cardinality: int,
    ) -> None:
        """Cheap (min/max) vocabulary check so a mismatched matrix fails loudly."""
        values = sparse.data if sparse is not None else matrix
        if values.size == 0:
            return
        low, high = int(values.min()), int(values.max())
        if cardinality == 2:
            if low < NEGATIVE or high > POSITIVE:
                raise LabelModelError(
                    f"binary label matrices use values in {{-1, 0, +1}}, got range "
                    f"[{low}, {high}]; pass cardinality= for categorical tasks"
                )
        elif low < 0 or high > cardinality:
            raise LabelModelError(
                f"cardinality-{cardinality} label matrices use values in "
                f"{{0, 1, .., {cardinality}}}, got range [{low}, {high}]"
            )

    # --------------------------------------------------------------------- EM
    def _fit_em(self, spec: FactorGraphSpec, matrix: np.ndarray) -> tuple[np.ndarray, float]:
        """Damped, truncated expectation-maximization with correlation discounting.

        The M-step re-estimates each LF's accuracy from its expected agreement
        with the posterior label; damping mixes the new estimate with the old
        one, and accuracies are capped at ``max_accuracy``.  Damping plus the
        cap act as regularization-by-early-stopping: they keep the estimator
        anchored near the well-behaved one-step solution and away from the
        degenerate optimum of the symmetric-accuracy model in which a few
        broad labeling functions are declared perfect and absorb every
        disagreement.
        """
        history = TrainingHistory()
        num_rows, num_lfs = matrix.shape
        voted = matrix != ABSTAIN
        vote_counts = np.maximum(voted.sum(axis=0), 1)
        discounts = self._correlation_discounts(spec, matrix)
        discounted = matrix.astype(float) / discounts
        covered = voted.any(axis=1)

        accuracies = np.full(num_lfs, self.accuracy_init)
        prior_weight = self._initial_prior_weight()
        estimate_balance = self.class_balance is None
        balance: Optional[float] = None

        for _ in range(self.epochs):
            weights = 0.5 * np.log(accuracies / (1.0 - accuracies))
            scores = (discounted * weights).sum(axis=1)
            if estimate_balance:
                # Estimate the balance from the prior-free (evidence-only)
                # posterior over the covered rows: feeding the prior back
                # into its own estimate is a positive-feedback loop that
                # collapses to 0 or 1 on imbalanced data, and uncovered rows
                # (posterior exactly 0.5) would only dilute the estimate.
                # The M-step keeps the prior-free posteriors for the same
                # reason.
                posteriors = sigmoid(2.0 * scores)
                balance = self._damped_balance(balance, posteriors, covered)
                prior_weight = 0.5 * float(np.log(balance / (1.0 - balance)))
            else:
                posteriors = sigmoid(2.0 * (scores + prior_weight))

            # M-step: expected accuracy of each LF on the rows where it votes,
            # smoothed toward the prior accuracy.
            agrees_positive = (matrix == POSITIVE) * posteriors[:, None]
            agrees_negative = (matrix == NEGATIVE) * (1.0 - posteriors[:, None])
            expected_correct = (agrees_positive + agrees_negative).sum(axis=0)
            new_accuracies = self._accuracy_update(accuracies, expected_correct, vote_counts)

            delta = float(np.abs(new_accuracies - accuracies).sum())
            accuracies = new_accuracies
            self._record_epoch(history, accuracies, delta)
            if delta < 1e-10:
                break

        weights = spec.initial_weights(accuracy_init=self.accuracy_init)
        weights[spec.layout.accuracy_slice] = 0.5 * np.log(accuracies / (1.0 - accuracies))
        self._record_correlation_weights(spec, matrix, weights)
        self.history = history
        return weights, prior_weight

    def _fit_em_sparse(
        self, spec: FactorGraphSpec, sparse: SparseLabelMatrix
    ) -> tuple[np.ndarray, float]:
        """The EM estimator over CSR storage: identical numerics, O(nnz) work.

        Every reduction of the dense estimator becomes a masked reduction
        over the stored (non-abstain) entries: the posterior scores are a
        sparse matvec with the per-entry correlation discounts folded into
        the entry values, and the M-step agreement sums are per-column
        ``bincount`` accumulations.
        """
        history = TrainingHistory()
        num_rows, num_lfs = sparse.shape
        col_indptr, entry_rows, entry_vals = sparse.csc()
        entry_cols = sparse.entry_cols()
        vote_counts = np.maximum(np.diff(col_indptr), 1)
        discounts = self._correlation_discounts_sparse(spec, sparse)
        discounted_vals = entry_vals.astype(float) / discounts
        entry_positive = entry_vals == POSITIVE
        covered = sparse.row_nnz() > 0

        accuracies = np.full(num_lfs, self.accuracy_init)
        prior_weight = self._initial_prior_weight()
        estimate_balance = self.class_balance is None
        balance: Optional[float] = None

        for _ in range(self.epochs):
            weights = 0.5 * np.log(accuracies / (1.0 - accuracies))
            scores = np.bincount(
                entry_rows, weights=discounted_vals * weights[entry_cols], minlength=num_rows
            )
            if estimate_balance:
                posteriors = sigmoid(2.0 * scores)
                balance = self._damped_balance(balance, posteriors, covered)
                prior_weight = 0.5 * float(np.log(balance / (1.0 - balance)))
            else:
                posteriors = sigmoid(2.0 * (scores + prior_weight))

            row_posteriors = posteriors[entry_rows]
            agreement = np.where(entry_positive, row_posteriors, 1.0 - row_posteriors)
            expected_correct = np.bincount(entry_cols, weights=agreement, minlength=num_lfs)
            new_accuracies = self._accuracy_update(accuracies, expected_correct, vote_counts)

            delta = float(np.abs(new_accuracies - accuracies).sum())
            accuracies = new_accuracies
            self._record_epoch(history, accuracies, delta)
            if delta < 1e-10:
                break

        weights = spec.initial_weights(accuracy_init=self.accuracy_init)
        weights[spec.layout.accuracy_slice] = 0.5 * np.log(accuracies / (1.0 - accuracies))
        self._record_correlation_weights(spec, sparse, weights)
        self.history = history
        return weights, prior_weight

    def _fit_em_categorical(
        self, spec: FactorGraphSpec, storage: np.ndarray | SparseLabelMatrix
    ) -> tuple[np.ndarray, np.ndarray]:
        """The k-ary EM estimator — one implementation for both storages.

        Either storage is reduced to its non-abstain ``(row, column, class)``
        triples, and every update of the binary estimator becomes a flattened
        ``bincount`` over them: the E-step accumulates per-row per-class
        accuracy-weight sums (with the correlation discounts folded into the
        entry weights) and takes a row softmax, and the M-step gathers each
        entry's posterior at its voted class.  Work per epoch is O(nnz) for
        the reductions plus O(m·k) for the softmax — the dense ``(m, n)``
        matrix is never scanned per class.  The per-iteration class-balance
        re-estimation is the damped k-vector generalization of the binary
        fix: estimated from the prior-free posteriors of the covered rows,
        clipped away from the simplex boundary, and renormalized.
        """
        history = TrainingHistory()
        k = spec.cardinality
        num_rows, num_lfs = storage.shape
        entry_rows, entry_cols, entry_vals, inv_discounts = self._categorical_entries(
            spec, storage
        )
        vote_counts = np.maximum(np.bincount(entry_cols, minlength=num_lfs), 1)
        covered = np.bincount(entry_rows, minlength=num_rows) > 0
        flat_index = entry_rows * k + (entry_vals - 1)

        accuracies = np.full(num_lfs, self.accuracy_init)
        log_priors = self._initial_log_priors(k)
        estimate_balance = self.class_balance is None
        balance: Optional[np.ndarray] = None

        for _ in range(self.epochs):
            weights = 0.5 * np.log(accuracies * (k - 1.0) / (1.0 - accuracies))
            scores = np.bincount(
                flat_index,
                weights=weights[entry_cols] * inv_discounts,
                minlength=num_rows * k,
            ).reshape(num_rows, k)
            if estimate_balance:
                posteriors = softmax(2.0 * scores, axis=1)
                balance = self._damped_balance_vector(balance, posteriors, covered)
                log_priors = np.log(balance)
            else:
                posteriors = softmax(2.0 * scores + log_priors, axis=1)

            agreement = posteriors[entry_rows, entry_vals - 1]
            expected_correct = np.bincount(entry_cols, weights=agreement, minlength=num_lfs)
            new_accuracies = self._accuracy_update(
                accuracies, expected_correct, vote_counts, chance=1.0 / k
            )
            delta = float(np.abs(new_accuracies - accuracies).sum())
            accuracies = new_accuracies
            self._record_epoch(history, accuracies, delta)
            if delta < 1e-10:
                break

        weights = spec.initial_weights(accuracy_init=self.accuracy_init)
        weights[spec.layout.accuracy_slice] = 0.5 * np.log(
            accuracies * (k - 1.0) / (1.0 - accuracies)
        )
        self._record_correlation_weights(spec, storage, weights)
        self.history = history
        priors = np.exp(log_priors)
        return weights, priors / priors.sum()

    # ------------------------------------------------------------- EM helpers
    def _categorical_entries(
        self, spec: FactorGraphSpec, storage: np.ndarray | SparseLabelMatrix
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Non-abstain triples plus per-entry inverse correlation discounts.

        The single reduction both the k-ary EM estimator and the categorical
        posterior are built on: either storage yields
        ``(entry_rows, entry_cols, entry_vals, 1/discounts)`` aligned
        elementwise (CSC order for sparse storage, row-major for dense —
        ``bincount`` reductions are order-independent).
        """
        if isinstance(storage, SparseLabelMatrix):
            _, entry_rows, entry_vals = storage.csc()
            entry_cols = storage.entry_cols()
            discounts = self._correlation_discounts_sparse(spec, storage)
        else:
            entry_rows, entry_cols = np.nonzero(storage != ABSTAIN)
            entry_vals = storage[entry_rows, entry_cols]
            discounts = self._correlation_discounts(spec, storage)[entry_rows, entry_cols]
        return entry_rows, entry_cols, entry_vals, 1.0 / discounts

    def _categorical_class_scores(
        self,
        spec: FactorGraphSpec,
        accuracy_weights: np.ndarray,
        storage: np.ndarray | SparseLabelMatrix,
    ) -> np.ndarray:
        """Per-row per-class accuracy-weight sums ``S_{i,c}``, shape ``(m, k)``.

        Without modeled correlations this is one shared
        :func:`class_vote_counts` pass; with them, the EM double-counting
        discounts are folded into the entry weights first.
        """
        k = spec.cardinality
        if self.method == "em" and spec.correlations:
            entry_rows, entry_cols, entry_vals, inv_discounts = self._categorical_entries(
                spec, storage
            )
            return np.bincount(
                entry_rows * k + (entry_vals - 1),
                weights=accuracy_weights[entry_cols] * inv_discounts,
                minlength=storage.shape[0] * k,
            ).reshape(storage.shape[0], k)
        return class_vote_counts(storage, k, column_weights=accuracy_weights)

    def _initial_prior_weight(self) -> float:
        if self.class_balance is not None:
            balance = np.asarray(self.class_balance, dtype=float)
            if balance.ndim != 0:
                raise LabelModelError(
                    "binary tasks take a scalar class_balance, got a vector "
                    f"of shape {balance.shape}"
                )
            return 0.5 * float(np.log(balance / (1.0 - balance)))
        return 0.0

    def _initial_log_priors(self, cardinality: int) -> np.ndarray:
        """Normalized log class prior of a categorical task (zeros when unknown)."""
        if self.class_balance is None:
            return np.zeros(cardinality)
        balance = np.asarray(self.class_balance, dtype=float)
        if balance.ndim == 0:
            raise LabelModelError(
                f"cardinality-{cardinality} tasks need a length-{cardinality} "
                "class_balance vector, got a scalar"
            )
        if balance.shape != (cardinality,):
            raise LabelModelError(
                f"class_balance must have length {cardinality}, got shape {balance.shape}"
            )
        return np.log(balance / balance.sum())

    def _damped_balance(
        self, previous: Optional[float], posteriors: np.ndarray, covered: np.ndarray
    ) -> float:
        """Damped per-iteration class-balance update, clipped away from 0/1.

        The estimate is the mean posterior over the covered rows — rows with
        no votes have a prior-free posterior of exactly 0.5 and carry no
        balance evidence.
        """
        if covered.any():
            estimate = float(np.clip(posteriors[covered].mean(), 1e-3, 1.0 - 1e-3))
        else:
            estimate = 0.5
        if previous is None:
            return estimate
        return self.damping * previous + (1.0 - self.damping) * estimate

    def _damped_balance_vector(
        self,
        previous: Optional[np.ndarray],
        posteriors: np.ndarray,
        covered: np.ndarray,
    ) -> np.ndarray:
        """The k-vector analogue of :meth:`_damped_balance`.

        Estimated as the mean posterior over the covered rows, clipped away
        from the simplex boundary, renormalized, and damped against the
        previous iteration's estimate.
        """
        cardinality = posteriors.shape[1]
        if covered.any():
            estimate = posteriors[covered].mean(axis=0)
        else:
            estimate = np.full(cardinality, 1.0 / cardinality)
        estimate = np.clip(estimate, 1e-3, None)
        estimate /= estimate.sum()
        if previous is None:
            return estimate
        mixed = self.damping * previous + (1.0 - self.damping) * estimate
        return mixed / mixed.sum()

    def _accuracy_update(
        self,
        accuracies: np.ndarray,
        expected_correct: np.ndarray,
        vote_counts: np.ndarray,
        chance: float = 0.5,
    ) -> np.ndarray:
        """Smoothed, clipped, damped accuracy re-estimate shared by both backends.

        ``chance`` is the accuracy of a random guesser (``1/k``); the
        non-adversarial clamp keeps every LF at or above it.
        """
        new_accuracies = (expected_correct + self.smoothing * self.accuracy_init) / (
            vote_counts + self.smoothing
        )
        new_accuracies = np.clip(new_accuracies, min(0.05, chance), self.max_accuracy)
        if self.non_adversarial:
            new_accuracies = np.maximum(new_accuracies, chance)
        return self.damping * accuracies + (1.0 - self.damping) * new_accuracies

    def _record_correlation_weights(
        self,
        spec: FactorGraphSpec,
        storage: np.ndarray | SparseLabelMatrix,
        weights: np.ndarray,
    ) -> None:
        """Empirical agreement log-odds of each modeled pair (both storages).

        The EM estimator uses the discount correction rather than these
        weights; they are recorded so the fitted joint model is inspectable.
        """
        if not spec.correlations:
            return
        if isinstance(storage, SparseLabelMatrix):
            for index, (j, k) in enumerate(spec.correlations):
                rows_j, vals_j = storage.column(j)
                rows_k, vals_k = storage.column(k)
                in_j, in_k = intersect_sorted(rows_j, rows_k)
                if in_j.size == 0:
                    agreement = 0.5
                else:
                    agreement = float((vals_j[in_j] == vals_k[in_k]).mean())
                weights[2 * spec.num_lfs + index] = self._agreement_weight(agreement)
            return
        voted = storage != ABSTAIN
        for index, (j, k) in enumerate(spec.correlations):
            both = voted[:, j] & voted[:, k]
            if both.sum() == 0:
                agreement = 0.5
            else:
                agreement = float((storage[both, j] == storage[both, k]).mean())
            weights[2 * spec.num_lfs + index] = self._agreement_weight(agreement)

    @staticmethod
    def _record_epoch(history: TrainingHistory, accuracies: np.ndarray, delta: float) -> None:
        history.epochs += 1
        history.weight_deltas.append(delta)
        history.mean_accuracy_weights.append(
            float(0.5 * np.log(accuracies / (1.0 - accuracies)).mean())
        )

    @staticmethod
    def _agreement_weight(agreement: float) -> float:
        agreement = float(np.clip(agreement, 1e-3, 1 - 1e-3))
        return 0.5 * float(np.log(agreement / (1.0 - agreement)))

    @staticmethod
    def _correlation_discounts(spec: FactorGraphSpec, matrix: np.ndarray) -> np.ndarray:
        """Per-entry double-counting discount ``d_{i,j}``.

        ``d_{i,j}`` is one plus the number of LF ``j``'s modeled correlation
        partners that cast the same (non-abstaining) vote on row ``i``; the
        EM posterior divides LF ``j``'s weight by it, so a clique of
        near-duplicates contributes approximately one effective vote.
        """
        discounts = np.ones_like(matrix, dtype=float)
        if not spec.correlations:
            return discounts
        voted = matrix != ABSTAIN
        for j, k in spec.correlations:
            same = voted[:, j] & voted[:, k] & (matrix[:, j] == matrix[:, k])
            discounts[same, j] += 1.0
            discounts[same, k] += 1.0
        return discounts

    @staticmethod
    def _correlation_discounts_sparse(
        spec: FactorGraphSpec, sparse: SparseLabelMatrix
    ) -> np.ndarray:
        """The same discounts ``d_{i,j}``, one value per stored entry (CSC order)."""
        discounts = np.ones(sparse.nnz)
        if not spec.correlations:
            return discounts
        col_indptr, _, _ = sparse.csc()
        for j, k in spec.correlations:
            rows_j, vals_j = sparse.column(j)
            rows_k, vals_k = sparse.column(k)
            in_j, in_k = intersect_sorted(rows_j, rows_k)
            same = vals_j[in_j] == vals_k[in_k]
            discounts[int(col_indptr[j]) + in_j[same]] += 1.0
            discounts[int(col_indptr[k]) + in_k[same]] += 1.0
        return discounts

    # --------------------------------------------------------------------- CD
    def _fit_cd(
        self, spec: FactorGraphSpec, matrix: np.ndarray | SparseLabelMatrix
    ) -> tuple[np.ndarray, float]:
        """The paper's SGD + Gibbs (contrastive divergence) estimator.

        Sparse inputs stay sparse: each minibatch is a CSR row slice, and the
        Gibbs sampler operates on its non-abstain entries only.  Categorical
        specs run the same ascent with the k-ary sampler and return the class
        prior as a probability vector instead of a half-log-odds scalar.

        Under the vectorized kernel the sampler plan (CSC layout, graph
        coloring, correlation alignments) is compiled once for the full
        matrix here — not per epoch, not per minibatch — and every batch's
        negative-phase chain runs on a row view derived from it
        (:meth:`SamplerPlan.select_rows`), against one shared workspace.
        """
        rng = ensure_rng(self.seed)
        sampler = GibbsSampler(spec, seed=rng, kernel=self.gibbs_kernel)
        if sampler.kernel == "vectorized":
            plan: Optional[SamplerPlan] = SamplerPlan.compile(spec, matrix)
            workspace: Optional[SamplerWorkspace] = SamplerWorkspace(plan)
        else:
            plan = workspace = None
        weights = spec.initial_weights(accuracy_init=self.accuracy_init)
        prior_weights = weights.copy()
        num_rows = matrix.shape[0]
        batch_size = min(self.batch_size, num_rows)
        history = TrainingHistory()
        if spec.cardinality > 2:
            # Half-log prior per class: the sampler exponentiates 2x, so this
            # reproduces the supplied balance (or stays uniform when unknown).
            class_prior: float | np.ndarray = 0.5 * self._initial_log_priors(spec.cardinality)
        elif self.class_balance is not None:
            class_prior = self._initial_prior_weight()
        else:
            class_prior = 0.0
        optimizer = AdamOptimizer(learning_rate=self.step_size)

        for _ in range(self.epochs):
            permutation = rng.permutation(num_rows)
            epoch_delta = 0.0
            for start in range(0, num_rows, batch_size):
                batch_rows = permutation[start : start + batch_size]
                if isinstance(matrix, SparseLabelMatrix):
                    batch: np.ndarray | SparseLabelMatrix = matrix.select_rows(batch_rows)
                else:
                    batch = matrix[batch_rows]
                batch_plan = plan.select_rows(batch_rows) if plan is not None else None
                gradient = self._cd_batch_gradient(
                    spec, sampler, weights, batch, class_prior, batch_plan, workspace
                )
                gradient -= self.reg_strength * (weights - prior_weights)
                # The estimator conditions on the abstention pattern, so the
                # propensity weights receive no gradient signal.
                gradient[spec.layout.propensity_slice] = 0.0
                new_weights = optimizer.step(weights, -gradient)
                if self.non_adversarial:
                    accuracy_slice = spec.layout.accuracy_slice
                    new_weights[accuracy_slice] = np.maximum(new_weights[accuracy_slice], 0.0)
                epoch_delta += float(np.abs(new_weights - weights).sum())
                weights = new_weights
            history.epochs += 1
            history.weight_deltas.append(epoch_delta)
            history.mean_accuracy_weights.append(
                float(weights[spec.layout.accuracy_slice].mean())
            )
        self.history = history
        if spec.cardinality > 2:
            priors = np.exp(2.0 * np.asarray(class_prior, dtype=float))
            return weights, priors / priors.sum()
        return weights, class_prior

    def _cd_batch_gradient(
        self,
        spec: FactorGraphSpec,
        sampler: GibbsSampler,
        weights: np.ndarray,
        batch: np.ndarray | SparseLabelMatrix,
        class_prior: float | np.ndarray,
        batch_plan: Optional[SamplerPlan] = None,
        workspace: Optional[SamplerWorkspace] = None,
    ) -> np.ndarray:
        """Ascent direction ``E_data[φ] - E_model[φ]`` for one minibatch.

        With a ``batch_plan`` (a row view of the fit-level plan) the
        negative-phase chain runs through the vectorized kernels against the
        shared ``workspace``; otherwise it goes through the sampler's
        per-call path.
        """
        posteriors = sampler.label_posteriors(weights, batch, class_prior)
        # Factor vectors are inherently dense in the batch dimension; a
        # minibatch-sized densification is bounded by the batch size.
        batch_dense = batch.to_dense() if isinstance(batch, SparseLabelMatrix) else batch
        if posteriors.ndim == 2:
            data_phase = np.zeros(spec.layout.size)
            for klass in range(1, spec.cardinality + 1):
                phi_klass = spec.factor_matrix(batch_dense, np.full(batch.shape[0], klass))
                data_phase += (posteriors[:, klass - 1, None] * phi_klass).sum(axis=0)
            data_phase /= batch.shape[0]
        else:
            phi_positive = spec.factor_matrix(batch_dense, np.full(batch.shape[0], POSITIVE))
            phi_negative = spec.factor_matrix(batch_dense, np.full(batch.shape[0], NEGATIVE))
            data_phase = (
                posteriors[:, None] * phi_positive
                + (1.0 - posteriors)[:, None] * phi_negative
            ).mean(axis=0)
        if batch_plan is not None:
            sampled_values, sampled_y = run_joint_chain(
                batch_plan,
                workspace,
                sampler.rng,
                weights,
                sweeps=self.cd_sweeps,
                class_prior_weight=class_prior,
            )
            sampled_matrix: np.ndarray = batch_plan.scatter_dense(sampled_values)
        else:
            sampled_matrix, sampled_y = sampler.sample_joint(
                weights, batch, sweeps=self.cd_sweeps, class_prior_weight=class_prior
            )
            if isinstance(sampled_matrix, SparseLabelMatrix):
                sampled_matrix = sampled_matrix.to_dense()
        model_phase = spec.factor_matrix(sampled_matrix, sampled_y).mean(axis=0)
        return data_phase - model_phase

    # ---------------------------------------------------------------- inference
    def _require_fitted(self) -> tuple[FactorGraphSpec, np.ndarray]:
        if self.spec is None or self.weights is None:
            raise NotFittedError("GenerativeModel must be fit before inference")
        return self.spec, self.weights

    @property
    def accuracy_weights(self) -> np.ndarray:
        """Learned accuracy weights (the log-odds weights ``w_acc``)."""
        spec, weights = self._require_fitted()
        return weights[spec.layout.accuracy_slice].copy()

    @property
    def correlation_weights(self) -> np.ndarray:
        """Learned correlation weights, aligned with ``spec.correlations``."""
        spec, weights = self._require_fitted()
        return weights[spec.layout.correlation_slice].copy()

    def learned_accuracies(self) -> np.ndarray:
        """Implied labeling-function accuracies.

        Binary models: ``σ(2 w_acc_j)``.  Categorical models invert the
        symmetric parameterization: ``a_j = σ(2 w_acc_j - log(k - 1))``.
        """
        spec, _ = self._require_fitted()
        accuracy_weights = self.accuracy_weights
        if spec.cardinality == 2:
            return np.asarray(log_odds_to_accuracy(accuracy_weights))
        return 1.0 / (1.0 + (spec.cardinality - 1) * np.exp(-2.0 * accuracy_weights))

    def predict_proba(self, label_matrix: LabelMatrix | np.ndarray) -> np.ndarray:
        """Probabilistic training labels.

        Binary models return ``Ỹ_i = p_ŵ(y_i = +1 | Λ_i)``, shape ``(m,)``;
        categorical models return the posterior distribution over classes,
        shape ``(m, k)``.  Sparse inputs are scored with a sparse reduction
        (correlation discounts folded into the entry values) — no
        densification.  A user-supplied class balance shifts every row's
        posterior; an EM-estimated balance shifts only the rows with no
        votes (see the ``class_balance`` parameter documentation).
        """
        spec, weights = self._require_fitted()
        accuracy_weights = weights[spec.layout.accuracy_slice]
        if spec.cardinality > 2:
            return self._predict_proba_categorical(spec, accuracy_weights, label_matrix)
        sparse = as_sparse_storage(label_matrix)
        if sparse is not None:
            if sparse.shape[1] != spec.num_lfs:
                raise LabelModelError(
                    f"label matrix has {sparse.shape[1]} LFs, model was fit with {spec.num_lfs}"
                )
            if self.method == "em" and spec.correlations:
                _, entry_rows, entry_vals = sparse.csc()
                entry_cols = sparse.entry_cols()
                discounts = self._correlation_discounts_sparse(spec, sparse)
                scores = np.bincount(
                    entry_rows,
                    weights=(entry_vals / discounts) * accuracy_weights[entry_cols],
                    minlength=sparse.shape[0],
                )
            else:
                scores = sparse.matvec(accuracy_weights)
            return self._posterior_from_scores(scores, covered=sparse.row_nnz() > 0)
        matrix = _as_array(label_matrix)
        if matrix.shape[1] != spec.num_lfs:
            raise LabelModelError(
                f"label matrix has {matrix.shape[1]} LFs, model was fit with {spec.num_lfs}"
            )
        if self.method == "em" and spec.correlations:
            discounts = self._correlation_discounts(spec, matrix)
            scores = ((matrix.astype(float) / discounts) * accuracy_weights).sum(axis=1)
        else:
            scores = matrix.astype(float) @ accuracy_weights
        return self._posterior_from_scores(scores, covered=(matrix != ABSTAIN).any(axis=1))

    def _predict_proba_categorical(
        self,
        spec: FactorGraphSpec,
        accuracy_weights: np.ndarray,
        label_matrix: LabelMatrix | np.ndarray,
    ) -> np.ndarray:
        """The ``(m, k)`` posterior: per-class weight sums, then a softmax."""
        sparse = as_sparse_storage(label_matrix)
        if sparse is not None:
            storage: np.ndarray | SparseLabelMatrix = sparse
            covered = sparse.row_nnz() > 0
        else:
            storage = _as_array(label_matrix)
            covered = (storage != ABSTAIN).any(axis=1)
        if storage.shape[1] != spec.num_lfs:
            raise LabelModelError(
                f"label matrix has {storage.shape[1]} LFs, model was fit with {spec.num_lfs}"
            )
        scores = self._categorical_class_scores(spec, accuracy_weights, storage)
        return self._posteriors_from_class_scores(scores, covered=covered)

    def _posterior_from_scores(self, scores: np.ndarray, covered: np.ndarray) -> np.ndarray:
        """Posterior with the class prior applied per its provenance.

        A supplied balance is part of the model and shifts every row; an
        estimated balance only fills in the no-evidence rows, whose posterior
        would otherwise be an uninformative 0.5.
        """
        if self.class_balance is None:
            prior = np.where(covered, 0.0, self.class_prior_weight_)
        else:
            prior = self.class_prior_weight_
        return sigmoid(2.0 * (scores + prior))

    def _posteriors_from_class_scores(
        self, scores: np.ndarray, covered: np.ndarray
    ) -> np.ndarray:
        """The categorical analogue of :meth:`_posterior_from_scores`.

        A supplied balance multiplies every row's posterior; an estimated
        balance replaces only the no-evidence rows, whose posterior would
        otherwise be the uninformative uniform distribution.
        """
        k = scores.shape[1]
        priors = self.class_priors_ if self.class_priors_ is not None else np.full(k, 1.0 / k)
        if self.class_balance is None:
            probabilities = softmax(2.0 * scores, axis=1)
            probabilities[~covered] = priors
            return probabilities
        return softmax(2.0 * scores + np.log(priors), axis=1)

    def predict(
        self, label_matrix: LabelMatrix | np.ndarray, tie_value: int = NEGATIVE
    ) -> np.ndarray:
        """Hard labels from the probabilistic labels.

        Binary models return signed labels with ties going to ``tie_value``;
        categorical models return the argmax class in ``1..k``.
        """
        probabilities = self.predict_proba(label_matrix)
        if probabilities.ndim == 2:
            return probabilities.argmax(axis=1).astype(np.int64) + 1
        return probs_to_labels(probabilities, tie_value=tie_value)

    def score(
        self, label_matrix: LabelMatrix | np.ndarray, gold_labels: Sequence[int] | np.ndarray
    ) -> float:
        """Accuracy of the hard predictions against gold labels."""
        predictions = self.predict(label_matrix)
        gold = np.asarray(gold_labels)
        return float((predictions == gold).mean())
