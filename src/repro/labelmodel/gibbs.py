"""Gibbs sampling for the generative label model.

The paper optimizes the marginal likelihood "by interleaving stochastic
gradient descent steps with Gibbs sampling ones, similar to contrastive
divergence", using the Numbskull NUMBA sampler.  This module provides the
pure-numpy equivalent: block-Gibbs updates over the latent labels ``y_i``
and, for the model-expectation (negative) phase of the gradient, over the
labeling-function outputs ``Λ_{i,j}`` themselves.

Both dense arrays and :class:`repro.labeling.sparse.SparseLabelMatrix`
storage are supported.  The LF-output resampling operates only on the
non-abstain entries of each column (their positions are precomputed once per
call), so a sweep costs O(nnz) rather than O(m·n); sparse inputs are never
densified, and ``label_posteriors`` reduces to a sparse matvec.

Both label vocabularies are supported, dispatched on the specification's
``cardinality``: the signed binary encoding ``{-1, 0, +1}`` runs the
original two-value updates (sigmoids of logit differences, bit-identical to
the binary-only implementation), while categorical labels ``{1..k}`` run
k-value block-Gibbs — the label conditional is a softmax over the per-class
accuracy-weight sums, and the LF-output conditional a softmax over the k
possible votes' factor energies.

Two sampling kernels are available, selected by the ``kernel`` argument:

* ``"vectorized"`` (the default behind ``"auto"``) — the graph-colored fused
  updates of :mod:`repro.labelmodel.kernels`: a :class:`SamplerPlan` is
  compiled once per chain (or passed in, e.g. by the contrastive-divergence
  loop, which compiles one per fit) and every sweep resamples whole color
  classes of columns in a handful of numpy calls.  Dense and sparse storage
  compile to the identical plan, so the two consume the same RNG stream and
  produce the same draws.
* ``"reference"`` — the original exact per-column loop, kept as the
  plainly-auditable fallback the vectorized kernel is validated against.

Both kernels sample from the same conditionals; ``label_posteriors`` (no
sampling involved) is kernel-independent and bit-identical.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.labeling.sparse import (
    SparseLabelMatrix,
    as_sparse_storage,
    class_vote_counts,
    intersect_sorted,
)
from repro.labelmodel.factor_graph import FactorGraphSpec
from repro.labelmodel.kernels import (
    SamplerPlan,
    SamplerWorkspace,
    resample_lf_entries,
    resolve_kernel,
    run_joint_chain,
)
from repro.types import ABSTAIN, NEGATIVE, POSITIVE
from repro.utils.mathutils import sigmoid, softmax
from repro.utils.rng import SeedLike, ensure_rng

MatrixLike = Union[np.ndarray, SparseLabelMatrix]


def _signed_indicator(values: np.ndarray) -> np.ndarray:
    """``1{v = +1} - 1{v = -1}`` as floats (abstains contribute 0)."""
    return (values == POSITIVE).astype(float) - (values == NEGATIVE).astype(float)


def _categorical_draw(rng: np.random.Generator, probabilities: np.ndarray) -> np.ndarray:
    """Draw one class per row from ``(m, k)`` probabilities; returns ``1..k``."""
    cumulative = np.cumsum(probabilities, axis=1)
    uniforms = rng.random((probabilities.shape[0], 1)) * cumulative[:, -1:]
    return (uniforms < cumulative).argmax(axis=1).astype(np.int64) + 1


class GibbsSampler:
    """Gibbs sampler over ``(Λ, Y)`` for a fixed factor-graph specification.

    All methods operate on a weight vector laid out per
    :class:`repro.labelmodel.factor_graph.WeightLayout`.  ``kernel`` selects
    the sampling implementation (see the module docstring): ``"auto"``
    resolves to the vectorized plan-based kernel, ``"reference"`` forces the
    per-column loop.
    """

    def __init__(
        self, spec: FactorGraphSpec, seed: SeedLike = None, kernel: str = "auto"
    ) -> None:
        self.spec = spec
        self.rng = ensure_rng(seed)
        self.kernel = resolve_kernel(kernel)

    # ------------------------------------------------------------------- labels
    def label_posteriors(
        self,
        weights: np.ndarray,
        label_matrix: MatrixLike,
        class_prior_weight: float | np.ndarray = 0.0,
    ) -> np.ndarray:
        """Exact label posterior for every row.

        Because the correlation and propensity factors do not involve ``y``,
        the conditional depends only on the accuracy weights (plus an optional
        class-prior weight ``w_0``):
        ``P(y_i = +1 | Λ_i) = σ(2 (w_0 + Σ_j w_acc_j Λ_{i,j}))`` (paper
        Appendix A.4; the prior term is an extension for imbalanced tasks).
        For sparse storage the score is a sparse matvec.

        Binary specs return the positive-class probability, shape ``(m,)``.
        Categorical specs (``cardinality = k > 2``) return the full
        distribution, shape ``(m, k)``:
        ``P(y_i = c | Λ_i) = softmax_c(2 (w_0,c + Σ_{j: Λ_{i,j}=c} w_acc_j))``
        with ``class_prior_weight`` a length-``k`` vector of half-log-priors
        (a scalar shifts every class equally, i.e. is a no-op).
        """
        _, accuracy_weights, _ = self.spec.split_weights(weights)
        if self.spec.cardinality > 2:
            scores = class_vote_counts(
                label_matrix, self.spec.cardinality, column_weights=accuracy_weights
            )
            return softmax(2.0 * (scores + np.asarray(class_prior_weight, dtype=float)), axis=1)
        sparse = as_sparse_storage(label_matrix)
        if sparse is not None:
            scores = sparse.matvec(accuracy_weights)
        else:
            scores = np.asarray(label_matrix, dtype=float) @ accuracy_weights
        return sigmoid(2.0 * (scores + class_prior_weight))

    def sample_labels(
        self,
        weights: np.ndarray,
        label_matrix: MatrixLike,
        class_prior_weight: float | np.ndarray = 0.0,
    ) -> np.ndarray:
        """Draw ``y_i ~ P(y_i | Λ_i, w)`` for every row.

        Binary specs return signed labels ``{-1, +1}``; categorical specs
        return classes ``1..k``.
        """
        posteriors = self.label_posteriors(weights, label_matrix, class_prior_weight)
        if posteriors.ndim == 2:
            return _categorical_draw(self.rng, posteriors)
        uniforms = self.rng.random(posteriors.shape[0])
        return np.where(uniforms < posteriors, POSITIVE, NEGATIVE).astype(np.int64)

    # -------------------------------------------------------------- LF outputs
    def sample_lf_outputs(
        self,
        weights: np.ndarray,
        label_matrix: MatrixLike,
        y: np.ndarray,
        sweeps: int = 1,
        pattern_mask: Optional[np.ndarray] = None,
        plan: Optional[SamplerPlan] = None,
        workspace: Optional[SamplerWorkspace] = None,
    ) -> MatrixLike:
        """Resample the non-abstaining ``Λ_{i,j}`` values given ``y`` and the rest.

        The estimator conditions on the *abstention pattern* of the observed
        label matrix: whether an LF votes is governed by the labeling
        propensity factor, which does not involve ``y``, so it carries no
        information about accuracies or correlations and can be conditioned
        on.  For entries where the pattern says "votes", the conditional of
        ``Λ_{i,j} = λ ∈ {-1, +1}`` is proportional to::

            exp( w_acc_j·1{λ=y_i} + Σ_{k: (j,k)∈C} w_corr_{jk}·1{λ=Λ_{i,k}} )

        Entries where the pattern says "abstains" stay abstaining.  Used for
        the model-expectation phase of contrastive-divergence training; the
        chain starts from the observed label matrix.

        Each column update touches only the rows where that column votes (for
        binary specs the two-value conditional reduces to a sigmoid of the
        logit difference; categorical specs draw from the softmax over the
        ``k`` candidate votes' energies), so a sweep is O(nnz).  Sparse
        inputs return sparse outputs with the same sparsity pattern.

        Under the vectorized kernel a :class:`SamplerPlan` is compiled for
        the matrix (or reused when passed in — it must have been compiled
        from this matrix) and the sweep runs as fused per-color updates.  A
        ``pattern_mask`` narrower than the matrix's own abstention pattern
        falls back to the reference loop, which honors arbitrary masks.
        """
        sparse = as_sparse_storage(label_matrix)
        if self.kernel == "vectorized" and self._mask_matches_pattern(
            pattern_mask, sparse, label_matrix
        ):
            if plan is None:
                plan = SamplerPlan.compile(self.spec, label_matrix)
            values = resample_lf_entries(plan, workspace, self.rng, weights, y, sweeps)
            if sparse is not None:
                return sparse.with_csc_data(values)
            return plan.scatter_dense(values)
        if sparse is not None:
            return self._sample_lf_outputs_sparse(weights, sparse, y, sweeps)
        _, accuracy, _ = self.spec.split_weights(weights)
        weights = np.asarray(weights, dtype=float)
        sampled = np.array(label_matrix, dtype=np.int64, copy=True)
        if pattern_mask is None:
            pattern_mask = sampled != ABSTAIN
        y = np.asarray(y)
        vote_rows = [np.flatnonzero(pattern_mask[:, j]) for j in range(self.spec.num_lfs)]
        categorical = self.spec.cardinality > 2
        for _ in range(sweeps):
            for j in range(self.spec.num_lfs):
                rows = vote_rows[j]
                if rows.size == 0:
                    continue
                if categorical:
                    partner_terms = [
                        (weights[weight_index], sampled[rows, partner])
                        for partner, weight_index in self.spec.neighbors(j)
                    ]
                    draws = self._column_class_draws(accuracy[j], y[rows], partner_terms)
                else:
                    logit_diff = accuracy[j] * _signed_indicator(y[rows])
                    for partner, weight_index in self.spec.neighbors(j):
                        logit_diff += weights[weight_index] * _signed_indicator(
                            sampled[rows, partner]
                        )
                    probability_positive = sigmoid(logit_diff)
                    draws = np.where(
                        self.rng.random(rows.size) < probability_positive, POSITIVE, NEGATIVE
                    ).astype(np.int64)
                sampled[rows, j] = draws
        return sampled

    @staticmethod
    def _mask_matches_pattern(
        pattern_mask: Optional[np.ndarray],
        sparse: Optional[SparseLabelMatrix],
        label_matrix: MatrixLike,
    ) -> bool:
        """Whether a supplied pattern mask is just the matrix's own pattern."""
        if pattern_mask is None:
            return True
        if sparse is not None:
            # O(nnz): the mask equals the pattern iff it is true on every
            # stored entry and nowhere else — never densify the matrix.
            if pattern_mask.shape != sparse.shape or int(pattern_mask.sum()) != sparse.nnz:
                return False
            return bool(pattern_mask[sparse.entry_rows(), sparse.indices].all())
        return bool(np.array_equal(pattern_mask, np.asarray(label_matrix) != ABSTAIN))

    def _column_class_draws(
        self,
        accuracy_j: float,
        y_rows: np.ndarray,
        partner_terms: list[tuple[float, np.ndarray]],
    ) -> np.ndarray:
        """Categorical draws for one column's voting rows.

        The conditional of ``Λ_{i,j} = λ ∈ {1..k}`` is
        ``softmax_λ(w_acc_j·1{λ=y_i} + Σ_partners w_corr·1{λ=Λ_{i,partner}})``
        — the k-ary generalization of the binary sigmoid over the logit
        difference (for k = 2 the two coincide).
        """
        k = self.spec.cardinality
        scores = np.zeros((y_rows.size, k))
        scores[np.arange(y_rows.size), y_rows - 1] = accuracy_j
        for weight, values in partner_terms:
            voted = np.flatnonzero(values != ABSTAIN)
            scores[voted, values[voted] - 1] += weight
        return _categorical_draw(self.rng, softmax(scores, axis=1))

    def _column_alignments(
        self, col_indptr: np.ndarray, entry_rows: np.ndarray
    ) -> list[list[tuple[int, np.ndarray, np.ndarray]]]:
        """Per column, where its vote rows intersect each correlated partner's.

        Returns, for every column ``j`` and each of its modeled partners, the
        partner's weight index, the positions within ``j``'s CSC slice where
        both vote, and the matching absolute CSC positions of the partner's
        entries.  Depends only on the sparsity pattern, so it is computed
        once per chain and reused across sweeps.
        """
        alignments: list[list[tuple[int, np.ndarray, np.ndarray]]] = []
        for j in range(self.spec.num_lfs):
            rows_j = entry_rows[col_indptr[j] : col_indptr[j + 1]]
            per_column = []
            for partner, weight_index in self.spec.neighbors(j):
                rows_p = entry_rows[col_indptr[partner] : col_indptr[partner + 1]]
                in_j, in_p = intersect_sorted(rows_j, rows_p)
                per_column.append((weight_index, in_j, int(col_indptr[partner]) + in_p))
            alignments.append(per_column)
        return alignments

    def _resample_columns_sparse(
        self,
        accuracy: np.ndarray,
        weights: np.ndarray,
        col_indptr: np.ndarray,
        entry_rows: np.ndarray,
        data: np.ndarray,
        y: np.ndarray,
        alignments: list[list[tuple[int, np.ndarray, np.ndarray]]],
    ) -> None:
        """One sweep of column-wise resampling, mutating ``data`` in place."""
        categorical = self.spec.cardinality > 2
        for j in range(self.spec.num_lfs):
            start, stop = int(col_indptr[j]), int(col_indptr[j + 1])
            if start == stop:
                continue
            rows = entry_rows[start:stop]
            partner_terms = []
            for weight_index, in_j, partner_positions in alignments[j]:
                partner_values = np.zeros(rows.size, dtype=np.int64)
                partner_values[in_j] = data[partner_positions]
                partner_terms.append((weights[weight_index], partner_values))
            if categorical:
                draws = self._column_class_draws(accuracy[j], y[rows], partner_terms)
            else:
                logit_diff = accuracy[j] * _signed_indicator(y[rows])
                for weight, partner_values in partner_terms:
                    logit_diff += weight * _signed_indicator(partner_values)
                probability_positive = sigmoid(logit_diff)
                draws = np.where(
                    self.rng.random(rows.size) < probability_positive, POSITIVE, NEGATIVE
                ).astype(np.int64)
            data[start:stop] = draws

    def _sample_lf_outputs_sparse(
        self,
        weights: np.ndarray,
        sparse: SparseLabelMatrix,
        y: np.ndarray,
        sweeps: int,
    ) -> SparseLabelMatrix:
        """Column-wise resampling over CSC entries; the pattern never changes."""
        _, accuracy, _ = self.spec.split_weights(weights)
        weights = np.asarray(weights, dtype=float)
        y = np.asarray(y)
        col_indptr, entry_rows, entry_vals = sparse.csc()
        data = entry_vals.copy()
        alignments = self._column_alignments(col_indptr, entry_rows)
        for _ in range(sweeps):
            self._resample_columns_sparse(
                accuracy, weights, col_indptr, entry_rows, data, y, alignments
            )
        return sparse.with_csc_data(data)

    def sample_joint(
        self,
        weights: np.ndarray,
        label_matrix: MatrixLike,
        sweeps: int = 1,
        initial_y: Optional[np.ndarray] = None,
        class_prior_weight: float | np.ndarray = 0.0,
        plan: Optional[SamplerPlan] = None,
        workspace: Optional[SamplerWorkspace] = None,
    ) -> tuple[MatrixLike, np.ndarray]:
        """Run ``sweeps`` rounds of block-Gibbs over ``(Y, Λ_values)`` starting at Λ.

        The abstention pattern of the observed matrix is held fixed (see
        :meth:`sample_lf_outputs`).  Returns the final ``(Λ_sample, y_sample)``
        pair; sparse inputs yield a sparse sample with the same pattern.

        Under the vectorized kernel the chain runs on a compiled
        :class:`SamplerPlan` — pass ``plan``/``workspace`` to amortize the
        compile and the scratch buffers across calls (the plan must have been
        compiled from this matrix, e.g. via ``SamplerPlan.compile`` or
        ``select_rows``); otherwise one is compiled for the call.
        """
        sparse = as_sparse_storage(label_matrix)
        if self.kernel == "vectorized":
            if plan is None:
                plan = SamplerPlan.compile(self.spec, label_matrix)
            values, y = run_joint_chain(
                plan,
                workspace,
                self.rng,
                weights,
                sweeps=sweeps,
                initial_y=initial_y,
                class_prior_weight=class_prior_weight,
            )
            if sparse is not None:
                return sparse.with_csc_data(values), y
            return plan.scatter_dense(values), y
        if sparse is not None:
            return self._sample_joint_sparse(
                weights, sparse, sweeps, initial_y, class_prior_weight
            )
        observed = np.asarray(label_matrix, dtype=np.int64)
        pattern_mask = observed != ABSTAIN
        current = observed.copy()
        if initial_y is None:
            y = self.sample_labels(weights, current, class_prior_weight)
        else:
            y = np.array(initial_y, dtype=np.int64, copy=True)
        for _ in range(sweeps):
            current = self.sample_lf_outputs(
                weights, current, y, sweeps=1, pattern_mask=pattern_mask
            )
            y = self.sample_labels(weights, current, class_prior_weight)
        return current, y

    def _sample_joint_sparse(
        self,
        weights: np.ndarray,
        sparse: SparseLabelMatrix,
        sweeps: int,
        initial_y: Optional[np.ndarray],
        class_prior_weight: float | np.ndarray,
    ) -> tuple[SparseLabelMatrix, np.ndarray]:
        """The block-Gibbs chain over CSC entries, with one-time setup.

        The CSC view, per-entry column ids, and correlated-pair alignments
        depend only on the (fixed) abstention pattern, so they are computed
        once for the whole chain rather than per sweep.
        """
        _, accuracy, _ = self.spec.split_weights(weights)
        weights = np.asarray(weights, dtype=float)
        col_indptr, entry_rows, entry_vals = sparse.csc()
        entry_cols = sparse.entry_cols()
        data = entry_vals.copy()
        alignments = self._column_alignments(col_indptr, entry_rows)
        num_rows = sparse.shape[0]

        cardinality = self.spec.cardinality

        def draw_labels() -> np.ndarray:
            if cardinality > 2:
                scores = np.bincount(
                    entry_rows * cardinality + (data - 1),
                    weights=accuracy[entry_cols],
                    minlength=num_rows * cardinality,
                ).reshape(num_rows, cardinality)
                posteriors = softmax(
                    2.0 * (scores + np.asarray(class_prior_weight, dtype=float)), axis=1
                )
                return _categorical_draw(self.rng, posteriors)
            scores = np.bincount(
                entry_rows, weights=data * accuracy[entry_cols], minlength=num_rows
            )
            posteriors = sigmoid(2.0 * (scores + class_prior_weight))
            return np.where(
                self.rng.random(num_rows) < posteriors, POSITIVE, NEGATIVE
            ).astype(np.int64)

        if initial_y is None:
            y = draw_labels()
        else:
            y = np.array(initial_y, dtype=np.int64, copy=True)
        for _ in range(sweeps):
            self._resample_columns_sparse(
                accuracy, weights, col_indptr, entry_rows, data, y, alignments
            )
            y = draw_labels()
        return sparse.with_csc_data(data), y
