"""Gibbs sampling for the generative label model.

The paper optimizes the marginal likelihood "by interleaving stochastic
gradient descent steps with Gibbs sampling ones, similar to contrastive
divergence", using the Numbskull NUMBA sampler.  This module provides the
pure-numpy equivalent: block-Gibbs updates over the latent labels ``y_i``
and, for the model-expectation (negative) phase of the gradient, over the
labeling-function outputs ``Λ_{i,j}`` themselves.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.labelmodel.factor_graph import FactorGraphSpec
from repro.types import ABSTAIN, NEGATIVE, POSITIVE
from repro.utils.mathutils import sigmoid
from repro.utils.rng import SeedLike, ensure_rng

_LF_VALUES = np.array([NEGATIVE, ABSTAIN, POSITIVE], dtype=np.int64)


class GibbsSampler:
    """Gibbs sampler over ``(Λ, Y)`` for a fixed factor-graph specification.

    All methods operate on a weight vector laid out per
    :class:`repro.labelmodel.factor_graph.WeightLayout`.
    """

    def __init__(self, spec: FactorGraphSpec, seed: SeedLike = None) -> None:
        self.spec = spec
        self.rng = ensure_rng(seed)

    # ------------------------------------------------------------------- labels
    def label_posteriors(
        self,
        weights: np.ndarray,
        label_matrix: np.ndarray,
        class_prior_weight: float = 0.0,
    ) -> np.ndarray:
        """Exact posterior ``P(y_i = +1 | Λ_i, w)`` for every row.

        Because the correlation and propensity factors do not involve ``y``,
        the conditional depends only on the accuracy weights (plus an optional
        class-prior weight ``w_0``):
        ``P(y_i = +1 | Λ_i) = σ(2 (w_0 + Σ_j w_acc_j Λ_{i,j}))`` (paper
        Appendix A.4; the prior term is an extension for imbalanced tasks).
        """
        _, accuracy_weights, _ = self.spec.split_weights(weights)
        scores = np.asarray(label_matrix, dtype=float) @ accuracy_weights
        return sigmoid(2.0 * (scores + class_prior_weight))

    def sample_labels(
        self,
        weights: np.ndarray,
        label_matrix: np.ndarray,
        class_prior_weight: float = 0.0,
    ) -> np.ndarray:
        """Draw ``y_i ~ P(y_i | Λ_i, w)`` for every row."""
        posteriors = self.label_posteriors(weights, label_matrix, class_prior_weight)
        uniforms = self.rng.random(posteriors.shape[0])
        return np.where(uniforms < posteriors, POSITIVE, NEGATIVE).astype(np.int64)

    # -------------------------------------------------------------- LF outputs
    def sample_lf_outputs(
        self,
        weights: np.ndarray,
        label_matrix: np.ndarray,
        y: np.ndarray,
        sweeps: int = 1,
        pattern_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Resample the non-abstaining ``Λ_{i,j}`` values given ``y`` and the rest.

        The estimator conditions on the *abstention pattern* of the observed
        label matrix: whether an LF votes is governed by the labeling
        propensity factor, which does not involve ``y``, so it carries no
        information about accuracies or correlations and can be conditioned
        on.  For entries where the pattern says "votes", the conditional of
        ``Λ_{i,j} = λ ∈ {-1, +1}`` is proportional to::

            exp( w_acc_j·1{λ=y_i} + Σ_{k: (j,k)∈C} w_corr_{jk}·1{λ=Λ_{i,k}} )

        Entries where the pattern says "abstains" stay abstaining.  Used for
        the model-expectation phase of contrastive-divergence training; the
        chain starts from the observed label matrix.
        """
        _, accuracy, _ = self.spec.split_weights(weights)
        weights = np.asarray(weights, dtype=float)
        sampled = np.array(label_matrix, dtype=np.int64, copy=True)
        if pattern_mask is None:
            pattern_mask = sampled != ABSTAIN
        y = np.asarray(y)
        m = sampled.shape[0]
        for _ in range(sweeps):
            for j in range(self.spec.num_lfs):
                votes = pattern_mask[:, j]
                if not np.any(votes):
                    continue
                # Candidate values: NEGATIVE (column 0) and POSITIVE (column 1).
                logits = np.zeros((m, 2))
                logits[:, 0] += accuracy[j] * (y == NEGATIVE)
                logits[:, 1] += accuracy[j] * (y == POSITIVE)
                for partner, weight_index in self.spec.neighbors(j):
                    partner_values = sampled[:, partner]
                    logits[:, 0] += weights[weight_index] * (partner_values == NEGATIVE)
                    logits[:, 1] += weights[weight_index] * (partner_values == POSITIVE)
                probability_positive = _row_softmax(logits)[:, 1]
                draws = np.where(
                    self.rng.random(m) < probability_positive, POSITIVE, NEGATIVE
                ).astype(np.int64)
                sampled[votes, j] = draws[votes]
        return sampled

    def sample_joint(
        self,
        weights: np.ndarray,
        label_matrix: np.ndarray,
        sweeps: int = 1,
        initial_y: Optional[np.ndarray] = None,
        class_prior_weight: float = 0.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run ``sweeps`` rounds of block-Gibbs over ``(Y, Λ_values)`` starting at Λ.

        The abstention pattern of the observed matrix is held fixed (see
        :meth:`sample_lf_outputs`).  Returns the final ``(Λ_sample, y_sample)``
        pair.
        """
        observed = np.asarray(label_matrix, dtype=np.int64)
        pattern_mask = observed != ABSTAIN
        current_matrix = observed.copy()
        if initial_y is None:
            y = self.sample_labels(weights, current_matrix, class_prior_weight)
        else:
            y = np.array(initial_y, dtype=np.int64, copy=True)
        for _ in range(sweeps):
            current_matrix = self.sample_lf_outputs(
                weights, current_matrix, y, sweeps=1, pattern_mask=pattern_mask
            )
            y = self.sample_labels(weights, current_matrix, class_prior_weight)
        return current_matrix, y


def _row_softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max subtraction for stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
