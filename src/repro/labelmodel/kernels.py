"""Vectorized Gibbs/CD sampling kernels: compiled plans and reusable workspaces.

The reference sampler (:mod:`repro.labelmodel.gibbs`) resamples the LF-output
columns one at a time — a Python-level loop whose per-call numpy overhead
dominates on wide crowd-style suites (hundreds of worker LFs, a few dozen
votes each).  This module replaces that loop with a kernel layer compiled
once per (abstention pattern, factor-graph spec):

* :class:`SamplerPlan` — the compiled artifact.  It fixes the column-major
  (CSC) entry layout, per-entry column ids, the correlated-pair alignments,
  and a **graph coloring of the LF dependency graph**: two columns share a
  color only when they share no correlation edge *and* no correlated partner
  (a distance-2 coloring of the correlation graph), so resampling all
  same-colored columns in one fused update is a valid block-Gibbs kernel —
  the columns of a color are conditionally independent given the latent
  labels and the other colors.  Color ``0`` is reserved for the columns with
  no modeled partner at all, so the common correlation-free suite collapses
  to a single color and a sweep becomes O(#colors) numpy calls instead of an
  O(n)-column Python loop.

* :class:`SamplerWorkspace` — preallocated scratch (uniform-draw buffers,
  entry-sized float/int scratch, ``(m, k)`` score blocks, per-color score
  blocks) reused across sweeps *and* across CD epochs, so the steady-state
  chain performs no per-sweep allocations beyond numpy's unavoidable
  reduction outputs.

* chain drivers — :func:`run_joint_chain` (block-Gibbs over ``(Λ, Y)``) and
  :func:`resample_lf_entries` (Λ given fixed ``Y``), both operating on the
  plan's flat entry array.

Two draw strategies make the fused updates cheap:

* **Independent color, closed form.**  Without correlation factors the
  conditional of a voting entry is "match the latent label with probability
  ``q_j = e^{w_j} / (e^{w_j} + k - 1)``, otherwise vote uniformly among the
  ``k - 1`` other classes".  The kernel therefore never builds per-entry
  score blocks for color 0: it draws match coins against a precomputed
  per-entry ``q`` table and (for ``k > 2``) maps a second uniform buffer to
  the non-matching classes in place.  For the binary vocabulary the update
  is pushed further: writing ``Λ_{ij} = y_i · s_{ij}`` with ``s_{ij} = ±1``
  the per-row label score factorizes as ``y_i · Σ_j s_{ij} w_j``, so a sweep
  needs no per-entry gather of ``y`` at all and the entry values are only
  materialized after the final sweep.

* **Correlated colors, inverse-CDF.**  Colors ``≥ 1`` build their score
  blocks in workspace buffers (accuracy term scattered by class, correlation
  terms accumulated over the precompiled alignments) and draw by inverse CDF
  on an in-place exponentiated cumulative sum — no per-column ``np.zeros``,
  no normalizing softmax pass, no temporary cumulative array.

The label-step categorical draws use the same in-place inverse-CDF, replacing
the reference sampler's softmax/cumsum/argmax churn.  The kernels draw from
exactly the same conditionals as the reference implementation — bit-identical
where no sampling is involved (``label_posteriors``, EM), and equal in
distribution for the chains (verified by ``tests/test_kernels.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import LabelModelError
from repro.labeling.sparse import as_sparse_storage, intersect_sorted, ranges_gather
from repro.labelmodel.factor_graph import FactorGraphSpec
from repro.types import ABSTAIN, NEGATIVE, POSITIVE
from repro.utils.mathutils import sigmoid

#: Accepted values of the ``kernel`` selector exposed by the samplers, the
#: generative model, and the pipeline config.
KERNELS = ("auto", "vectorized", "reference")


def resolve_kernel(kernel: str) -> str:
    """Validate a kernel selector and resolve ``"auto"`` to the default."""
    if kernel not in KERNELS:
        raise LabelModelError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    return "vectorized" if kernel == "auto" else kernel


def color_columns(spec: FactorGraphSpec) -> np.ndarray:
    """Distance-2 greedy coloring of the LF correlation graph.

    Returns one color id per column.  Columns with no modeled partner all
    share the reserved color ``0``; correlated columns are greedily colored
    from ``1`` upward (ascending column id, so the coloring is deterministic)
    such that two columns never share a color when they are correlated *or*
    share a correlated partner.  The direct-edge constraint is what block-
    Gibbs validity requires (no factor connects two same-colored columns);
    the shared-partner constraint additionally keeps every partner read
    within a fused update unambiguous and cheap to precompile.
    """
    colors = np.zeros(spec.num_lfs, dtype=np.int64)
    if not spec.correlations:
        return colors
    adjacency = spec.neighbor_sets()
    for j in range(spec.num_lfs):
        if not adjacency[j]:
            continue
        conflicts = set(adjacency[j])
        for partner in adjacency[j]:
            conflicts |= adjacency[partner]
        conflicts.discard(j)
        used = {int(colors[other]) for other in conflicts if other < j and adjacency[other]}
        color = 1
        while color in used:
            color += 1
        colors[j] = color
    return colors


@dataclass
class _ColorUpdate:
    """One correlated color's fused update, fully precompiled.

    ``positions`` are the absolute plan-entry positions of the color's
    entries (ascending); ``rows`` their row ids.  The correlation terms are
    flattened over the color: aligned pair ``p`` adds weight
    ``weights[weight_indices[p]] · 1{Λ_self = Λ_partner}`` to the block-local
    entry ``local[p]``, reading the partner's current value at absolute
    position ``partners[p]``.
    """

    color: int
    positions: np.ndarray
    rows: np.ndarray
    local: np.ndarray
    partners: np.ndarray
    weight_indices: np.ndarray


class SamplerPlan:
    """A Gibbs sweep schedule compiled once per (abstention pattern, spec).

    The plan owns everything about a chain that does not change while it
    runs: the CSC-ordered entry layout (rows, columns, observed values), the
    graph coloring, the per-color gather indices, and the correlated-pair
    alignments.  Chains mutate only a flat value array laid out in plan
    order; :meth:`scatter_dense` and the storage's ``with_csc_data`` turn
    that array back into a matrix.

    Use :meth:`compile` to build one from a label matrix (dense or sparse —
    both produce the identical plan, so the kernels consume the same RNG
    stream for either storage), and :meth:`select_rows` to derive the plan of
    a row minibatch without recompiling (no re-coloring, no re-alignment —
    the contrastive-divergence loop builds one plan per fit and derives the
    per-batch views from it).
    """

    def __init__(
        self,
        spec: FactorGraphSpec,
        num_rows: int,
        entry_rows: np.ndarray,
        entry_cols: np.ndarray,
        entry_values: np.ndarray,
        colors: np.ndarray,
        independent: Optional[np.ndarray],
        color_updates: list[_ColorUpdate],
    ) -> None:
        self.spec = spec
        self.num_rows = int(num_rows)
        self.entry_rows = entry_rows
        self.entry_cols = entry_cols
        self.entry_values = entry_values
        self.colors = colors
        #: Absolute positions of the independent (color-0) entries, or
        #: ``None`` when *every* entry is independent — the fast path that
        #: skips all gathers.
        self.independent = independent
        self.color_updates = color_updates
        if independent is None:
            self.independent_rows = entry_rows
        else:
            self.independent_rows = entry_rows[independent]
        if color_updates:
            self.correlated_positions: Optional[np.ndarray] = np.concatenate(
                [update.positions for update in color_updates]
            )
            self.max_color_block = max(update.positions.size for update in color_updates)
        else:
            self.correlated_positions = None
            self.max_color_block = 0

    # ------------------------------------------------------------------ basics
    @property
    def nnz(self) -> int:
        """Number of (non-abstain) entries the plan schedules."""
        return int(self.entry_rows.size)

    @property
    def num_colors(self) -> int:
        """Number of color classes (fused updates per sweep)."""
        return int(self.colors.max()) + 1 if self.colors.size else 1

    # ----------------------------------------------------------------- compile
    @classmethod
    def compile(
        cls, spec: FactorGraphSpec, label_matrix
    ) -> "SamplerPlan":
        """Compile the plan for a label matrix (dense array or CSR storage).

        Dense matrices and their sparse counterparts compile to the same
        plan: entries in column-major order with rows ascending within each
        column, exactly the storage's CSC view.
        """
        sparse = as_sparse_storage(label_matrix)
        if sparse is not None:
            num_rows, num_cols = sparse.shape
            col_indptr, entry_rows, entry_values = sparse.csc()
            entry_cols = sparse.entry_cols()
        else:
            matrix = np.asarray(label_matrix, dtype=np.int64)
            if matrix.ndim != 2:
                raise LabelModelError(
                    f"label matrix must be 2-D, got shape {matrix.shape}"
                )
            num_rows, num_cols = matrix.shape
            entry_cols, entry_rows = np.nonzero(matrix.T != ABSTAIN)
            entry_cols = entry_cols.astype(np.int64)
            entry_rows = entry_rows.astype(np.int64)
            entry_values = matrix[entry_rows, entry_cols]
            col_indptr = np.zeros(num_cols + 1, dtype=np.int64)
            np.cumsum(np.bincount(entry_cols, minlength=num_cols), out=col_indptr[1:])
        if num_cols != spec.num_lfs:
            raise LabelModelError(
                f"label matrix has {num_cols} LFs, spec expects {spec.num_lfs}"
            )

        colors = color_columns(spec)
        counts = np.diff(col_indptr)
        if not spec.correlations:
            return cls(
                spec, num_rows, entry_rows, entry_cols, entry_values, colors, None, []
            )

        # Per-color gather indices (color 0 = the independent columns).
        independent_cols = np.flatnonzero(colors == 0)
        independent = ranges_gather(col_indptr[independent_cols], counts[independent_cols])

        # Pairwise alignments, computed once per pair and distributed to the
        # two directed updates (j reads k, k reads j).
        per_color_self: dict[int, list[np.ndarray]] = {}
        per_color_partner: dict[int, list[np.ndarray]] = {}
        per_color_weight: dict[int, list[np.ndarray]] = {}
        for offset, (j, k) in enumerate(spec.correlations):
            weight_index = 2 * spec.num_lfs + offset
            rows_j = entry_rows[col_indptr[j] : col_indptr[j + 1]]
            rows_k = entry_rows[col_indptr[k] : col_indptr[k + 1]]
            in_j, in_k = intersect_sorted(rows_j, rows_k)
            absolute_j = int(col_indptr[j]) + in_j
            absolute_k = int(col_indptr[k]) + in_k
            for self_color, self_abs, partner_abs in (
                (int(colors[j]), absolute_j, absolute_k),
                (int(colors[k]), absolute_k, absolute_j),
            ):
                per_color_self.setdefault(self_color, []).append(self_abs)
                per_color_partner.setdefault(self_color, []).append(partner_abs)
                per_color_weight.setdefault(self_color, []).append(
                    np.full(self_abs.size, weight_index, dtype=np.int64)
                )

        color_updates: list[_ColorUpdate] = []
        for color in range(1, int(colors.max()) + 1):
            color_cols = np.flatnonzero(colors == color)
            positions = ranges_gather(col_indptr[color_cols], counts[color_cols])
            if positions.size == 0:
                continue
            if color in per_color_self:
                self_abs = np.concatenate(per_color_self[color])
                partner_abs = np.concatenate(per_color_partner[color])
                weight_idx = np.concatenate(per_color_weight[color])
                local = np.searchsorted(positions, self_abs)
            else:  # pragma: no cover - every color >= 1 has correlated columns
                self_abs = np.empty(0, dtype=np.int64)
                partner_abs = np.empty(0, dtype=np.int64)
                weight_idx = np.empty(0, dtype=np.int64)
                local = np.empty(0, dtype=np.int64)
            color_updates.append(
                _ColorUpdate(
                    color=color,
                    positions=positions,
                    rows=entry_rows[positions],
                    local=local,
                    partners=partner_abs,
                    weight_indices=weight_idx,
                )
            )
        return cls(
            spec,
            num_rows,
            entry_rows,
            entry_cols,
            entry_values,
            colors,
            independent,
            color_updates,
        )

    # ------------------------------------------------------------- derivation
    def select_rows(self, row_indices: Sequence[int] | np.ndarray) -> "SamplerPlan":
        """Derive the plan of a row subset (e.g. a CD minibatch) in O(nnz).

        ``row_indices`` must be distinct; they become rows ``0..b-1`` of the
        derived plan in the given order.  Because every alignment pairs two
        entries of the *same* row, the precompiled correlation structure
        survives row selection by pure masking — no re-coloring, no new
        intersections, no per-column Python work.
        """
        row_indices = np.asarray(row_indices, dtype=np.int64)
        row_map = np.full(self.num_rows, -1, dtype=np.int64)
        row_map[row_indices] = np.arange(row_indices.size, dtype=np.int64)
        mapped_rows = row_map[self.entry_rows]
        keep = mapped_rows >= 0
        new_position = np.cumsum(keep) - 1  # old absolute -> new absolute where kept

        entry_rows = mapped_rows[keep]
        entry_cols = self.entry_cols[keep]
        entry_values = self.entry_values[keep]

        if self.independent is None:
            independent: Optional[np.ndarray] = None
        else:
            kept_independent = self.independent[keep[self.independent]]
            independent = new_position[kept_independent]

        color_updates: list[_ColorUpdate] = []
        for update in self.color_updates:
            keep_block = keep[update.positions]
            positions = new_position[update.positions[keep_block]]
            if positions.size == 0:
                continue
            new_local = np.cumsum(keep_block) - 1
            pair_keep = keep_block[update.local]
            color_updates.append(
                _ColorUpdate(
                    color=update.color,
                    positions=positions,
                    rows=entry_rows[positions],
                    local=new_local[update.local[pair_keep]],
                    partners=new_position[update.partners[pair_keep]],
                    weight_indices=update.weight_indices[pair_keep],
                )
            )
        return SamplerPlan(
            self.spec,
            row_indices.size,
            entry_rows,
            entry_cols,
            entry_values,
            self.colors,
            independent,
            color_updates,
        )

    # ---------------------------------------------------------- materialization
    def scatter_dense(self, entry_values: np.ndarray) -> np.ndarray:
        """Scatter plan-ordered entry values into a dense ``(m, n)`` matrix."""
        dense = np.full((self.num_rows, self.spec.num_lfs), ABSTAIN, dtype=np.int64)
        dense[self.entry_rows, self.entry_cols] = entry_values
        return dense

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"SamplerPlan(shape=({self.num_rows}, {self.spec.num_lfs}), "
            f"nnz={self.nnz}, num_colors={self.num_colors})"
        )


class SamplerWorkspace:
    """Preallocated sampler scratch, reused across sweeps and CD epochs.

    Sized for one plan and reusable for any plan derived from it via
    :meth:`SamplerPlan.select_rows` (derived plans are never larger).  The
    chain drivers slice every buffer to the active plan's sizes, so a single
    workspace serves the whole training loop.
    """

    def __init__(self, plan: SamplerPlan) -> None:
        cardinality = plan.spec.cardinality
        self.capacity_entries = plan.nnz
        self.capacity_rows = plan.num_rows
        self.capacity_block = plan.max_color_block
        self.cardinality = cardinality
        #: Uniform draws for the entry updates (match coins / inverse CDF).
        self.entry_uniforms = np.empty(plan.nnz)
        #: Secondary per-entry uniforms (categorical "other class" draws).
        self.entry_uniforms2 = np.empty(plan.nnz if cardinality > 2 else 0)
        #: Chain state: the current entry values in plan order.
        self.entry_values = np.empty(plan.nnz, dtype=np.int64)
        #: Float scratch (signed weights, weighted votes).
        self.entry_scratch = np.empty(plan.nnz)
        #: Integer scratch (candidate classes, flattened bincount indices).
        self.entry_index = np.empty(plan.nnz, dtype=np.int64)
        #: Per-entry gathered latent labels.
        self.entry_labels = np.empty(plan.nnz, dtype=np.int64)
        #: Uniform draws for the label step.
        self.row_uniforms = np.empty(plan.num_rows)
        #: Float row scratch (label scores, posteriors).
        self.row_scratch = np.empty(plan.num_rows)
        #: Uniform draws for the correlated color updates (separate from the
        #: entry buffer, which the binary independent update keeps alive as
        #: its factored sign margins between sweeps).
        self.block_uniforms = np.empty(plan.max_color_block)
        #: ``(m, k)`` label-score block (categorical only).
        self.row_scores = (
            np.empty((plan.num_rows, cardinality)) if cardinality > 2 else None
        )
        #: Fused per-color score block (correlated categorical colors only).
        self.block_scores = (
            np.empty(plan.max_color_block * cardinality)
            if plan.max_color_block and cardinality > 2
            else None
        )

    def accommodates(self, plan: SamplerPlan) -> bool:
        """Whether this workspace is large enough to drive ``plan``."""
        return (
            plan.nnz <= self.capacity_entries
            and plan.num_rows <= self.capacity_rows
            and plan.max_color_block <= self.capacity_block
            and plan.spec.cardinality == self.cardinality
        )


def _sigmoid_into(scores: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Buffered logistic sigmoid: ``out = 1 / (1 + exp(-scores))``.

    ``scores`` is clipped in place to ±60 (far past float64 saturation of
    the sigmoid) so the single ``exp`` pass cannot overflow — the same
    result as the masked two-branch :func:`repro.utils.mathutils.sigmoid`
    without its per-call boolean-index churn, which dominates when the
    label step runs every sweep.
    """
    np.clip(scores, -60.0, 60.0, out=scores)
    np.negative(scores, out=out)
    np.exp(out, out=out)
    out += 1.0
    np.reciprocal(out, out=out)
    return out


def _inverse_cdf_draw(scores: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
    """Categorical draws from unnormalized log-scores, in place.

    ``scores`` is a ``(b, k)`` block of factor energies that is destroyed:
    shifted by its row maximum, exponentiated, and cumulatively summed in
    place.  ``uniforms`` must already hold ``b`` uniform draws; the returned
    classes are ``1..k``.  No normalizing softmax pass and no cumulative
    temporary — the inverse CDF runs on the unnormalized sums directly.
    """
    scores -= scores.max(axis=1, keepdims=True)
    np.exp(scores, out=scores)
    np.cumsum(scores, axis=1, out=scores)
    thresholds = uniforms * scores[:, -1]
    return (scores < thresholds[:, None]).sum(axis=1).astype(np.int64) + 1


class _ChainGibbsState:
    """One chain's per-call state: weight gathers, buffers, draw routines.

    Created by the chain drivers; precomputes everything that is fixed while
    the weights are fixed (per-entry accuracy weights, match-probability
    tables) and exposes the three kernel steps — entry resampling, label
    drawing, materialization.  For the binary independent color the entry
    values are kept in factored ``Λ = y · s`` form between sweeps and only
    scattered into the value array by :meth:`materialize`.
    """

    def __init__(
        self,
        plan: SamplerPlan,
        workspace: SamplerWorkspace,
        rng: np.random.Generator,
        weights: np.ndarray,
    ) -> None:
        if not workspace.accommodates(plan):
            raise LabelModelError(
                "workspace is too small for this plan; build it from the largest "
                "plan (SamplerWorkspace(plan)) and reuse it for derived plans"
            )
        self.plan = plan
        self.workspace = workspace
        self.rng = rng
        spec = plan.spec
        self.cardinality = spec.cardinality
        self.weights = np.asarray(weights, dtype=float)
        _, accuracy, _ = spec.split_weights(self.weights)
        self.accuracy = accuracy
        self.accuracy_entries = accuracy[plan.entry_cols]
        # Match probability of an independent voting entry:
        # q_j = e^{w_j} / (e^{w_j} + (k - 1)); for k = 2 this is sigmoid(w_j).
        if self.cardinality > 2:
            match_prob = 1.0 / (1.0 + (self.cardinality - 1.0) * np.exp(-accuracy))
        else:
            match_prob = sigmoid(accuracy)
        if plan.independent is None:
            self.q_entries = match_prob[plan.entry_cols]
            self.accuracy_independent = self.accuracy_entries
        else:
            independent_cols = plan.entry_cols[plan.independent]
            self.q_entries = match_prob[independent_cols]
            self.accuracy_independent = accuracy[independent_cols]
        self.independent_size = self.q_entries.size
        # Chain value state, initialized from the observed entries.
        self.data = workspace.entry_values[: plan.nnz]
        np.copyto(self.data, plan.entry_values)
        # Binary factored form: per-entry sign margins ``q - u`` (≥ 0 means
        # "matches y") plus the y they were drawn against.
        self._pending_margin: Optional[np.ndarray] = None
        self._pending_y: Optional[np.ndarray] = None

    # -------------------------------------------------------------- entry step
    def resample_entries(self, y: np.ndarray) -> None:
        """One fused sweep over all colors, conditioned on ``y``."""
        self._resample_independent(y)
        for update in self.plan.color_updates:
            self._resample_color(update, y)

    def _independent_view(self, buffer: np.ndarray) -> np.ndarray:
        return buffer[: self.independent_size]

    def _resample_independent(self, y: np.ndarray) -> None:
        if self.independent_size == 0:
            return
        plan, ws = self.plan, self.workspace
        uniforms = self._independent_view(ws.entry_uniforms)
        self.rng.random(out=uniforms)
        if self.cardinality == 2:
            # Factored update: Λ_ij = y_i · s_ij with s = sign(q - u).  The
            # buffer is turned into the margins in place; the label step
            # consumes Σ_j s_ij w_j via one copysign pass, so nothing is
            # materialized until the chain ends.
            np.subtract(self.q_entries, uniforms, out=uniforms)
            self._pending_margin = uniforms
            self._pending_y = y
            return
        rows = plan.independent_rows
        labels = self._independent_view(ws.entry_labels)
        np.take(y, rows, out=labels)
        # Non-matching class: floor(u2 · (k-1)) ∈ {0..k-2}, shifted past y.
        others_float = self._independent_view(ws.entry_uniforms2)
        self.rng.random(out=others_float)
        np.multiply(others_float, self.cardinality - 1, out=others_float)
        others = self._independent_view(ws.entry_index)
        np.copyto(others, others_float, casting="unsafe")
        others += 1
        others += others >= labels
        np.copyto(others, labels, where=uniforms < self.q_entries)
        if plan.independent is None:
            np.copyto(self.data, others)
        else:
            self.data[plan.independent] = others

    def _resample_color(self, update: _ColorUpdate, y: np.ndarray) -> None:
        block = update.positions.size
        ws = self.workspace
        uniforms = ws.block_uniforms[:block]
        self.rng.random(out=uniforms)
        if self.cardinality == 2:
            scores = self.accuracy_entries[update.positions] * y[update.rows]
            if update.local.size:
                contributions = self.weights[update.weight_indices] * self.data[
                    update.partners
                ]
                np.add.at(scores, update.local, contributions)
            draws = np.where(uniforms < sigmoid(scores), POSITIVE, NEGATIVE)
        else:
            k = self.cardinality
            scores = ws.block_scores[: block * k]
            scores.fill(0.0)
            flat_match = np.arange(block, dtype=np.int64) * k + (y[update.rows] - 1)
            scores[flat_match] = self.accuracy_entries[update.positions]
            if update.local.size:
                np.add.at(
                    scores,
                    update.local * k + (self.data[update.partners] - 1),
                    self.weights[update.weight_indices],
                )
            draws = _inverse_cdf_draw(scores.reshape(block, k), uniforms)
        self.data[update.positions] = draws

    # -------------------------------------------------------------- label step
    def draw_labels(self, class_prior_weight: float | np.ndarray) -> np.ndarray:
        """Draw ``y ~ P(y | Λ, w)`` from the current chain state."""
        if self.cardinality > 2:
            return self._draw_labels_categorical(class_prior_weight)
        return self._draw_labels_binary(class_prior_weight)

    def _draw_labels_binary(self, class_prior_weight: float | np.ndarray) -> np.ndarray:
        plan, ws = self.plan, self.workspace
        num_rows = plan.num_rows
        if self._pending_margin is not None:
            # Factored independent entries: score contribution y_i · t_i with
            # t_i = Σ_j s_ij w_j and s_ij = sign(margin) — two in-place passes
            # and one reduction; no materialization, no per-entry gather of y.
            # (Not copysign(w, margin): that would drop the sign of a
            # negative — adversarial — accuracy weight, and the match
            # probability q = σ(w) < ½ must pair with a *negative* matched
            # contribution there.)
            signed = self._independent_view(ws.entry_scratch)
            np.sign(self._pending_margin, out=signed)
            signed *= self.accuracy_independent
            scores = np.bincount(
                plan.independent_rows, weights=signed, minlength=num_rows
            )
            scores *= self._pending_y
        else:
            scores = np.zeros(num_rows)
            if self.independent_size:
                independent = (
                    slice(None) if plan.independent is None else plan.independent
                )
                votes = self._independent_view(ws.entry_scratch)
                np.multiply(
                    self.data[independent], self.accuracy_independent, out=votes
                )
                scores += np.bincount(
                    plan.independent_rows, weights=votes, minlength=num_rows
                )
        correlated = plan.correlated_positions
        if correlated is not None:
            votes = ws.entry_scratch[: correlated.size]
            np.multiply(
                self.data[correlated], self.accuracy_entries[correlated], out=votes
            )
            scores += np.bincount(
                plan.entry_rows[correlated], weights=votes, minlength=num_rows
            )
        scores += class_prior_weight
        scores *= 2.0
        posteriors = _sigmoid_into(scores, ws.row_scratch[:num_rows])
        uniforms = ws.row_uniforms[:num_rows]
        self.rng.random(out=uniforms)
        return np.where(uniforms < posteriors, POSITIVE, NEGATIVE).astype(np.int64)

    def _draw_labels_categorical(
        self, class_prior_weight: float | np.ndarray
    ) -> np.ndarray:
        plan, ws = self.plan, self.workspace
        num_rows, k = plan.num_rows, self.cardinality
        flat = ws.entry_index[: plan.nnz]
        np.multiply(plan.entry_rows, k, out=flat)
        flat += self.data
        flat -= 1
        scores = np.bincount(
            flat, weights=self.accuracy_entries, minlength=num_rows * k
        ).reshape(num_rows, k)
        block = ws.row_scores[:num_rows]
        np.multiply(scores, 2.0, out=block)
        block += 2.0 * np.asarray(class_prior_weight, dtype=float)
        uniforms = ws.row_uniforms[:num_rows]
        self.rng.random(out=uniforms)
        return _inverse_cdf_draw(block, uniforms)

    # --------------------------------------------------------- materialization
    def materialize(self) -> np.ndarray:
        """The current entry values in plan order (resolving the factored form)."""
        if self._pending_margin is not None:
            plan, ws = self.plan, self.workspace
            labels = self._independent_view(ws.entry_labels)
            np.take(self._pending_y, plan.independent_rows, out=labels)
            negated = self._independent_view(ws.entry_index)
            np.negative(labels, out=negated)
            np.copyto(negated, labels, where=self._pending_margin >= 0.0)
            if plan.independent is None:
                np.copyto(self.data, negated)
            else:
                self.data[plan.independent] = negated
            self._pending_margin = None
            self._pending_y = None
        return self.data.copy()


def run_joint_chain(
    plan: SamplerPlan,
    workspace: Optional[SamplerWorkspace],
    rng: np.random.Generator,
    weights: np.ndarray,
    sweeps: int = 1,
    initial_y: Optional[np.ndarray] = None,
    class_prior_weight: float | np.ndarray = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Block-Gibbs over ``(Λ_values, Y)``; returns plan-ordered values and ``y``.

    The chain starts from the plan's observed entry values; when
    ``initial_y`` is ``None`` the first ``y`` is drawn from the observed
    matrix exactly like the reference sampler.  Pass a ``workspace`` to reuse
    buffers across calls (CD epochs); one sized for the parent plan serves
    every derived minibatch plan.
    """
    state = _ChainGibbsState(plan, workspace or SamplerWorkspace(plan), rng, weights)
    if initial_y is None:
        y = state.draw_labels(class_prior_weight)
    else:
        y = np.array(initial_y, dtype=np.int64, copy=True)
    for _ in range(sweeps):
        state.resample_entries(y)
        y = state.draw_labels(class_prior_weight)
    return state.materialize(), y


def resample_lf_entries(
    plan: SamplerPlan,
    workspace: Optional[SamplerWorkspace],
    rng: np.random.Generator,
    weights: np.ndarray,
    y: np.ndarray,
    sweeps: int = 1,
) -> np.ndarray:
    """Resample ``Λ`` given fixed ``y``; returns the plan-ordered entry values."""
    state = _ChainGibbsState(plan, workspace or SamplerWorkspace(plan), rng, weights)
    y = np.asarray(y, dtype=np.int64)
    for _ in range(sweeps):
        state.resample_entries(y)
    return state.materialize()
