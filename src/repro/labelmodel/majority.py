"""Majority-vote label aggregation baselines.

The unweighted majority vote is both the baseline the generative model is
compared against (Definition 1's ``f_1``) and the strategy the Algorithm-1
optimizer falls back to when the predicted modeling advantage is small.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import LabelModelError
from repro.labeling.matrix import LabelMatrix
from repro.labeling.sparse import as_sparse_storage, class_vote_counts
from repro.types import ABSTAIN, NEGATIVE, POSITIVE
from repro.utils.mathutils import sigmoid


def _as_array(label_matrix: LabelMatrix | np.ndarray) -> np.ndarray:
    if isinstance(label_matrix, LabelMatrix):
        return label_matrix.values
    return np.asarray(label_matrix, dtype=np.int64)


class MajorityVoter:
    """Unweighted majority vote over binary labeling-function outputs.

    The vote for data point ``i`` is ``f_1(Λ_i) = Σ_j Λ_{i,j}`` with
    abstentions encoded as 0; the predicted label is its sign.  Ties (vote
    sum exactly 0) produce probability 0.5.
    """

    def vote_scores(self, label_matrix: LabelMatrix | np.ndarray) -> np.ndarray:
        """The raw vote sums ``f_1(Λ_i)`` (sparse inputs stay sparse)."""
        sparse = as_sparse_storage(label_matrix)
        if sparse is not None:
            return sparse.row_sums()
        return _as_array(label_matrix).sum(axis=1).astype(float)

    def predict_proba(self, label_matrix: LabelMatrix | np.ndarray) -> np.ndarray:
        """Positive-class probabilities.

        Rows with no votes or tied votes get probability 0.5; otherwise the
        probability is the fraction of non-abstaining votes that are positive,
        which reproduces the "unweighted average of LF outputs" the paper's
        Table 5 baseline trains on.
        """
        sparse = as_sparse_storage(label_matrix)
        if sparse is not None:
            positive = sparse.count_per_row(POSITIVE).astype(float)
            negative = sparse.count_per_row(NEGATIVE).astype(float)
        else:
            values = _as_array(label_matrix)
            positive = (values == POSITIVE).sum(axis=1).astype(float)
            negative = (values == NEGATIVE).sum(axis=1).astype(float)
        total = positive + negative
        probs = np.full(positive.shape[0], 0.5)
        voted = total > 0
        probs[voted] = positive[voted] / total[voted]
        return probs

    def predict(
        self, label_matrix: LabelMatrix | np.ndarray, tie_break: int = ABSTAIN
    ) -> np.ndarray:
        """Hard labels: sign of the vote sum, with ``tie_break`` on ties."""
        scores = self.vote_scores(label_matrix)
        labels = np.where(scores > 0, POSITIVE, NEGATIVE).astype(np.int64)
        labels[scores == 0] = tie_break
        return labels


class WeightedMajorityVoter:
    """Weighted majority vote ``f_w(Λ_i) = Σ_j w_j Λ_{i,j}``.

    With the optimal (true log-odds) weights this is the paper's WMV*, i.e.
    the predictions of a perfectly estimated independent generative model.
    """

    def __init__(self, weights: Sequence[float] | np.ndarray) -> None:
        self.weights = np.asarray(weights, dtype=float)
        if self.weights.ndim != 1:
            raise LabelModelError(f"weights must be 1-dimensional, got shape {self.weights.shape}")

    def vote_scores(self, label_matrix: LabelMatrix | np.ndarray) -> np.ndarray:
        """The weighted vote sums ``f_w(Λ_i)`` (sparse matvec for sparse inputs)."""
        sparse = as_sparse_storage(label_matrix)
        if sparse is not None:
            if sparse.shape[1] != self.weights.shape[0]:
                raise LabelModelError(
                    f"label matrix has {sparse.shape[1]} LFs but "
                    f"{self.weights.shape[0]} weights given"
                )
            return sparse.matvec(self.weights)
        values = _as_array(label_matrix)
        if values.shape[1] != self.weights.shape[0]:
            raise LabelModelError(
                f"label matrix has {values.shape[1]} LFs but {self.weights.shape[0]} weights given"
            )
        return values @ self.weights

    def predict_proba(self, label_matrix: LabelMatrix | np.ndarray) -> np.ndarray:
        """Posterior positive-class probabilities ``σ(2 f_w(Λ_i))``.

        This is exactly ``p_w(y_i = 1 | Λ_i)`` in the independent generative
        model (paper Appendix A.4).
        """
        return sigmoid(2.0 * self.vote_scores(label_matrix))

    def predict(
        self, label_matrix: LabelMatrix | np.ndarray, tie_break: int = ABSTAIN
    ) -> np.ndarray:
        """Hard labels from the weighted vote, with ``tie_break`` on ties."""
        scores = self.vote_scores(label_matrix)
        labels = np.where(scores > 0, POSITIVE, NEGATIVE).astype(np.int64)
        labels[np.isclose(scores, 0.0)] = tie_break
        return labels


class MultiClassMajorityVoter:
    """Plurality vote for multi-class label matrices (labels 1..k, 0 = abstain).

    Ties are broken uniformly at random with the provided RNG (or toward the
    lowest class id when deterministic behaviour is requested).
    """

    def __init__(self, cardinality: int, seed: Optional[int] = None) -> None:
        if cardinality < 2:
            raise LabelModelError(f"cardinality must be >= 2, got {cardinality}")
        self.cardinality = cardinality
        self._rng = np.random.default_rng(seed)

    def predict_proba(self, label_matrix: LabelMatrix | np.ndarray) -> np.ndarray:
        """Per-class probabilities proportional to vote counts (uniform when unvoted).

        All class counts come from one pass over the stored entries
        (:func:`repro.labeling.sparse.class_vote_counts`, shared with the
        multi-class generative posterior) rather than one scan per class.
        """
        counts = class_vote_counts(label_matrix, self.cardinality)
        totals = counts.sum(axis=1, keepdims=True)
        probs = np.full_like(counts, 1.0 / self.cardinality)
        voted = totals[:, 0] > 0
        probs[voted] = counts[voted] / totals[voted]
        return probs

    def predict(
        self, label_matrix: LabelMatrix | np.ndarray, deterministic: bool = True
    ) -> np.ndarray:
        """Hard class predictions in ``1..cardinality``."""
        probs = self.predict_proba(label_matrix)
        if deterministic:
            return probs.argmax(axis=1) + 1
        predictions = np.empty(probs.shape[0], dtype=np.int64)
        for i, row in enumerate(probs):
            best = np.flatnonzero(np.isclose(row, row.max()))
            predictions[i] = int(self._rng.choice(best)) + 1
        return predictions
