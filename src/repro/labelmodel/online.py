"""Online incremental generative label model (sufficient-statistic EM).

Everything in :mod:`repro.labelmodel.generative` is batch: a new candidate
chunk or an edited labeling function means refitting from scratch over the
whole corpus.  This module makes the label model *online* — the shape a
long-lived labeling service needs (freshness, bounded staleness, per-task
model versions):

:class:`OnlineGenerativeModel`
    Maintains the EM sufficient statistics — per-LF expected-correct and
    vote-count accumulators, the damped class-balance state, and the
    covered-row posterior mass — over every chunk folded in so far, plus
    the raw non-abstain triples of the accumulated label matrix Λ.

    * :meth:`update` folds a new chunk in at **O(chunk + n)** cost: one
      E-pass over the chunk's entries at the current warm parameters adds
      its statistics to the accumulators, and one O(n) M-step re-estimates
      the accuracies.  Accumulated rows are never rescanned.
    * :meth:`add_lf` / :meth:`remove_lf` rewire the statistics and the
      modeled correlation structure without a full refit; the structure
      learner's node-wise regressions decompose per node, so
      :meth:`relearn_structure` re-solves only the affected nodes through
      :meth:`repro.labelmodel.structure.StructureLearner.refit_nodes`.
    * :meth:`serve_posteriors` streams posteriors for arriving chunks
      under a monotonically increasing ``model_version_``, optionally
      auto-draining when the staleness bound (updates folded since the
      last exact fit) is exceeded.
    * :meth:`drain` is the exact tier: it rebuilds the accumulated Λ as
      CSR storage and delegates to a fresh same-config batch
      :class:`GenerativeModel` fit.  Because :meth:`SparseLabelMatrix.
      from_triples` canonicalizes the entry order, a drained model is
      **bit-identical** to ``GenerativeModel.fit`` on the equivalent
      sparse matrix regardless of how the stream was chunked, and matches
      the dense batch fit within float round-off (≤1e-8).  The drain is
      memoized on ``model_version_``, so the zero-update warm case —
      serving again without new data — returns the cached batch model
      bitwise.

Durability: :meth:`save` persists the full state (triples + accumulators)
as one block in a :class:`repro.labeling.blockstore.BlockStore`, stamped
with ``epoch=model_version_`` so a store opened with
``retention="latest_epoch"`` keeps only the newest snapshot; :meth:`load`
restores the newest one.  The pipeline wires this through
``PipelineConfig(online=True)``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple, Optional, Sequence

import numpy as np

from repro.exceptions import LabelModelError, NotFittedError
from repro.labeling.matrix import LabelMatrix
from repro.labeling.sparse import SparseLabelMatrix, as_sparse_storage
from repro.labelmodel.factor_graph import FactorGraphSpec
from repro.labelmodel.generative import GenerativeModel
from repro.labelmodel.structure import StructureLearner
from repro.types import ABSTAIN, NEGATIVE, POSITIVE
from repro.utils.mathutils import sigmoid, softmax
from repro.utils.rng import SeedLike

__all__ = ["OnlineGenerativeModel", "ServedPosteriors"]


class ServedPosteriors(NamedTuple):
    """One served chunk: its posteriors and the model version that scored it."""

    #: ``(m,)`` positive-class probabilities for binary tasks, ``(m, k)``
    #: class distributions for categorical ones — the library-wide
    #: ``predict_proba`` convention.
    probs: np.ndarray
    #: The (monotonically increasing) ``model_version_`` under which this
    #: chunk was scored.
    model_version: int


def _chunk_storage(chunk) -> tuple[SparseLabelMatrix, Optional[int]]:
    """Coerce any accepted chunk type to CSR storage (plus its cardinality)."""
    declared = chunk.cardinality if isinstance(chunk, LabelMatrix) else None
    sparse = as_sparse_storage(chunk)
    if sparse is not None:
        return sparse, declared
    values = chunk.values if isinstance(chunk, LabelMatrix) else chunk
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 2:
        raise LabelModelError(f"chunk must be 2-D, got shape {values.shape}")
    return SparseLabelMatrix.from_dense(values), declared


class OnlineGenerativeModel:
    """EM over accumulated sufficient statistics, with an exact drain tier.

    Parameters mirror the EM estimator of :class:`GenerativeModel` (the
    online model is EM-only; the CD estimator's Gibbs chains have no
    sufficient-statistic form).  Additional parameters:

    Parameters
    ----------
    correlations:
        The modeled correlation pairs, shared by the warm folds and the
        drained batch fits.  Mutable through :meth:`set_correlations` /
        :meth:`relearn_structure` / :meth:`remove_lf`.
    max_staleness:
        Staleness bound for :meth:`serve_posteriors`: the maximum number of
        statistics-changing updates that may have been folded since the
        last exact fit before serving triggers :meth:`drain` automatically.
        ``0`` serves exact posteriors always; ``None`` (default) never
        auto-drains — serving uses the warm parameters.
    """

    def __init__(
        self,
        cardinality: Optional[int] = None,
        correlations: Iterable[tuple[int, int]] = (),
        epochs: int = 30,
        accuracy_init: float = 0.7,
        smoothing: float = 2.0,
        damping: float = 0.5,
        max_accuracy: float = 0.95,
        learn_propensity: bool = True,
        class_balance: Optional[float | Sequence[float]] = None,
        non_adversarial: bool = True,
        max_staleness: Optional[int] = None,
        seed: SeedLike = 0,
    ) -> None:
        if max_staleness is not None and max_staleness < 0:
            raise LabelModelError(
                f"max_staleness must be >= 0 or None, got {max_staleness}"
            )
        # The template validates the shared EM configuration and provides
        # the estimator helpers (accuracy update, discounts, priors); it is
        # never fitted itself.
        self._template = GenerativeModel(
            method="em",
            epochs=epochs,
            accuracy_init=accuracy_init,
            smoothing=smoothing,
            damping=damping,
            max_accuracy=max_accuracy,
            learn_propensity=learn_propensity,
            class_balance=class_balance,
            non_adversarial=non_adversarial,
            cardinality=cardinality,
            seed=seed,
        )
        self.cardinality = cardinality
        self.class_balance = class_balance
        self.max_staleness = max_staleness
        self.correlations_: list[tuple[int, int]] = [
            (int(j), int(k)) for j, k in correlations
        ]

        #: Pinned by the first chunk (or explicitly via ``cardinality=``).
        self.cardinality_: Optional[int] = None
        self.num_rows_ = 0
        self.num_lfs_: Optional[int] = None

        # Accumulated non-abstain triples of Λ (global row ids), kept as
        # appended parts and concatenated lazily.
        self._rows_parts: list[np.ndarray] = []
        self._cols_parts: list[np.ndarray] = []
        self._vals_parts: list[np.ndarray] = []
        self._triples_cache: Optional[tuple[np.ndarray, np.ndarray, np.ndarray]] = None

        # The EM sufficient statistics (created at the first pinning chunk).
        self.expected_correct_: Optional[np.ndarray] = None
        self.vote_counts_: Optional[np.ndarray] = None
        self.accuracies_: Optional[np.ndarray] = None
        #: Posterior mass over covered rows: a scalar for binary tasks, a
        #: length-``k`` vector for categorical ones.
        self.posterior_mass_: Optional[float | np.ndarray] = None
        self.covered_rows_ = 0
        #: Damped class-balance state (``None`` until evidence arrives or
        #: when ``class_balance`` is supplied).
        self.balance_: Optional[float | np.ndarray] = None

        #: Monotonically increasing model version: bumped by every
        #: statistics-changing mutation and by every fresh exact fit.
        self.model_version_ = 0
        #: Statistics-changing updates folded since the last exact fit.
        self.updates_since_drain_ = 0

        self._spec_cache: Optional[FactorGraphSpec] = None
        self._drained: Optional[GenerativeModel] = None
        self._drained_version = -1
        self._warm_model: Optional[GenerativeModel] = None
        self._warm_version = -1

    # ------------------------------------------------------------------ state
    def _pin(self, num_lfs: int, declared: Optional[int]) -> None:
        """Fix the LF count and cardinality from the first chunk."""
        if self.num_lfs_ is None:
            self.num_lfs_ = int(num_lfs)
            if self.cardinality is not None:
                self.cardinality_ = int(self.cardinality)
            elif declared is not None:
                self.cardinality_ = int(declared)
            else:
                self.cardinality_ = 2
            self.expected_correct_ = np.zeros(self.num_lfs_)
            self.vote_counts_ = np.zeros(self.num_lfs_, dtype=np.int64)
            self.accuracies_ = np.full(self.num_lfs_, self._template.accuracy_init)
            if self.cardinality_ > 2:
                self.posterior_mass_ = np.zeros(self.cardinality_)
            else:
                self.posterior_mass_ = 0.0
        elif num_lfs != self.num_lfs_:
            raise LabelModelError(
                f"chunk has {num_lfs} LFs, model accumulates {self.num_lfs_}"
            )

    def _require_pinned(self) -> int:
        if self.num_lfs_ is None:
            raise NotFittedError("OnlineGenerativeModel has not seen any chunk yet")
        return self.num_lfs_

    def _validate_values(self, values: np.ndarray) -> None:
        if values.size == 0:
            return
        low, high = int(values.min()), int(values.max())
        k = self.cardinality_
        if k == 2:
            if low < NEGATIVE or high > POSITIVE:
                raise LabelModelError(
                    f"binary chunks use values in {{-1, 0, +1}}, got range "
                    f"[{low}, {high}]; pass cardinality= for categorical tasks"
                )
        elif low < 0 or high > k:
            raise LabelModelError(
                f"cardinality-{k} chunks use values in {{0, 1, .., {k}}}, "
                f"got range [{low}, {high}]"
            )

    def _spec(self) -> FactorGraphSpec:
        if self._spec_cache is None:
            self._spec_cache = FactorGraphSpec(
                num_lfs=self._require_pinned(),
                correlations=self.correlations_,
                cardinality=self.cardinality_,
            )
        return self._spec_cache

    def _invalidate(self, structure: bool = False) -> None:
        """A statistics-changing mutation: bump the version, drop caches."""
        self.model_version_ += 1
        self.updates_since_drain_ += 1
        self._warm_model = None
        if structure:
            self._spec_cache = None

    def _triples(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._triples_cache is None:
            self._triples_cache = (
                np.concatenate(self._rows_parts) if self._rows_parts
                else np.empty(0, dtype=np.int64),
                np.concatenate(self._cols_parts) if self._cols_parts
                else np.empty(0, dtype=np.int64),
                np.concatenate(self._vals_parts) if self._vals_parts
                else np.empty(0, dtype=np.int64),
            )
        return self._triples_cache

    def _append_triples(
        self, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
    ) -> None:
        if rows.size:
            self._rows_parts.append(np.asarray(rows, dtype=np.int64))
            self._cols_parts.append(np.asarray(cols, dtype=np.int64))
            self._vals_parts.append(np.asarray(vals, dtype=np.int64))
            self._triples_cache = None

    def accumulated_matrix(self) -> SparseLabelMatrix:
        """The accumulated Λ as canonical CSR storage.

        ``from_triples`` sorts by ``(row, col)``, so the result is
        independent of the order chunks arrived in (given the same row
        ids) — the property the drain's bit-equivalence rests on.
        """
        num_lfs = self._require_pinned()
        rows, cols, vals = self._triples()
        return SparseLabelMatrix.from_triples(
            rows, cols, vals, (self.num_rows_, num_lfs)
        )

    # ---------------------------------------------------------------- folding
    def _expected_statistics(
        self, storage: SparseLabelMatrix, accuracies: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float | np.ndarray, int]:
        """One E-pass over a storage's entries at the given accuracies.

        Returns ``(expected_correct, vote_counts, posterior_mass,
        covered_count)`` — exactly the quantities the batch M-step consumes,
        restricted to this storage's rows.  O(nnz of the storage + n).
        """
        spec = self._spec()
        num_rows, num_lfs = storage.shape
        k = self.cardinality_
        covered = storage.row_nnz() > 0
        vote_counts = storage.col_nnz()
        template = self._template
        if k == 2:
            weights = 0.5 * np.log(accuracies / (1.0 - accuracies))
            _, entry_rows, entry_vals = storage.csc()
            entry_cols = storage.entry_cols()
            discounts = GenerativeModel._correlation_discounts_sparse(spec, storage)
            scores = np.bincount(
                entry_rows,
                weights=(entry_vals / discounts) * weights[entry_cols],
                minlength=num_rows,
            )
            if self.class_balance is None:
                # Prior-free posteriors, matching the batch E-step (see the
                # balance-estimation note in the generative module).
                posteriors = sigmoid(2.0 * scores)
            else:
                posteriors = sigmoid(2.0 * (scores + template._initial_prior_weight()))
            mass: float | np.ndarray = float(posteriors[covered].sum())
            agreement = np.where(
                entry_vals == POSITIVE,
                posteriors[entry_rows],
                1.0 - posteriors[entry_rows],
            )
        else:
            weights = 0.5 * np.log(accuracies * (k - 1.0) / (1.0 - accuracies))
            entry_rows, entry_cols, entry_vals, inv_discounts = (
                template._categorical_entries(spec, storage)
            )
            scores = np.bincount(
                entry_rows * k + (entry_vals - 1),
                weights=weights[entry_cols] * inv_discounts,
                minlength=num_rows * k,
            ).reshape(num_rows, k)
            if self.class_balance is None:
                posteriors = softmax(2.0 * scores, axis=1)
            else:
                posteriors = softmax(
                    2.0 * scores + template._initial_log_priors(k), axis=1
                )
            mass = posteriors[covered].sum(axis=0)
            agreement = posteriors[entry_rows, entry_vals - 1]
        expected_correct = np.bincount(
            entry_cols, weights=agreement, minlength=num_lfs
        )
        return expected_correct, vote_counts, mass, int(covered.sum())

    def _fold_balance(self) -> None:
        """Damped class-balance update from the accumulated posterior mass."""
        if self.class_balance is not None or self.covered_rows_ == 0:
            return
        if self.cardinality_ > 2:
            estimate = np.clip(
                np.asarray(self.posterior_mass_) / self.covered_rows_, 1e-3, None
            )
            estimate /= estimate.sum()
            if self.balance_ is None:
                self.balance_ = estimate
            else:
                mixed = (
                    self._template.damping * self.balance_
                    + (1.0 - self._template.damping) * estimate
                )
                self.balance_ = mixed / mixed.sum()
        else:
            estimate = float(
                np.clip(self.posterior_mass_ / self.covered_rows_, 1e-3, 1.0 - 1e-3)
            )
            if self.balance_ is None:
                self.balance_ = estimate
            else:
                self.balance_ = (
                    self._template.damping * self.balance_
                    + (1.0 - self._template.damping) * estimate
                )

    def _m_step(self) -> None:
        """O(n) accuracy re-estimate from the accumulated statistics."""
        chance = 0.5 if self.cardinality_ == 2 else 1.0 / self.cardinality_
        self.accuracies_ = self._template._accuracy_update(
            self.accuracies_,
            self.expected_correct_,
            np.maximum(self.vote_counts_, 1),
            chance=chance,
        )

    def update(self, chunk) -> "OnlineGenerativeModel":
        """Fold a new candidate chunk into the accumulated statistics.

        Accepts a dense array, a :class:`LabelMatrix` (either storage), or
        raw :class:`SparseLabelMatrix` storage.  Cost is O(chunk + n):
        one E-pass over the chunk's non-abstain entries at the current warm
        parameters plus one O(n) M-step.  An all-abstain chunk only extends
        the row count — the statistics, parameters, and ``model_version_``
        are untouched.
        """
        storage, declared = _chunk_storage(chunk)
        self._pin(storage.shape[1], declared)
        self._validate_values(storage.data)
        _, entry_rows, entry_vals = storage.csc()
        entry_cols = storage.entry_cols()
        self._append_triples(entry_rows + self.num_rows_, entry_cols, entry_vals)
        self.num_rows_ += storage.shape[0]
        if storage.nnz == 0:
            return self
        expected_correct, vote_counts, mass, covered = self._expected_statistics(
            storage, self.accuracies_
        )
        self.expected_correct_ = self.expected_correct_ + expected_correct
        self.vote_counts_ = self.vote_counts_ + vote_counts
        self.posterior_mass_ = self.posterior_mass_ + mass
        self.covered_rows_ += covered
        self._fold_balance()
        self._m_step()
        self._invalidate()
        return self

    # ------------------------------------------------------------- LF editing
    def add_lf(self, votes: np.ndarray) -> int:
        """Append a labeling function's votes over the accumulated rows.

        ``votes`` is a dense length-``num_rows_`` vector in the task's
        vocabulary (``ABSTAIN`` where the LF abstains).  The new LF starts
        at the prior accuracy with init-consistent pseudo-statistics (its
        warm M-step estimate is exactly ``accuracy_init`` before evidence
        accumulates); :meth:`drain` re-estimates it exactly.  Returns the
        new LF's column index.
        """
        num_lfs = self._require_pinned()
        votes = np.asarray(votes, dtype=np.int64)
        if votes.shape != (self.num_rows_,):
            raise LabelModelError(
                f"votes must have shape ({self.num_rows_},), got {votes.shape}"
            )
        column = num_lfs
        self.num_lfs_ = num_lfs + 1
        rows = np.flatnonzero(votes != ABSTAIN)
        vals = votes[rows]
        self._validate_values(vals)
        self._append_triples(rows, np.full(rows.size, column, dtype=np.int64), vals)
        self.accuracies_ = np.append(self.accuracies_, self._template.accuracy_init)
        self.vote_counts_ = np.append(self.vote_counts_, rows.size)
        self.expected_correct_ = np.append(
            self.expected_correct_, self._template.accuracy_init * rows.size
        )
        # Covered-row mass is unchanged only approximately (newly covered
        # rows existed before with posterior 0.5/uniform); the drain
        # recomputes it exactly.
        self._invalidate(structure=True)
        return column

    def remove_lf(self, index: int) -> "OnlineGenerativeModel":
        """Drop a labeling function; later columns shift down by one.

        Its triples, accumulators, and every modeled correlation pair it
        participates in are removed in one O(nnz) pass — no refit.
        """
        num_lfs = self._require_pinned()
        if not 0 <= index < num_lfs:
            raise LabelModelError(f"no LF at index {index} (have {num_lfs})")
        rows, cols, vals = self._triples()
        keep = cols != index
        new_cols = cols[keep]
        new_cols = np.where(new_cols > index, new_cols - 1, new_cols)
        self._rows_parts = [rows[keep]]
        self._cols_parts = [new_cols]
        self._vals_parts = [vals[keep]]
        self._triples_cache = None
        self.num_lfs_ = num_lfs - 1
        self.accuracies_ = np.delete(self.accuracies_, index)
        self.vote_counts_ = np.delete(self.vote_counts_, index)
        self.expected_correct_ = np.delete(self.expected_correct_, index)
        self.correlations_ = [
            (j - (j > index), k - (k > index))
            for j, k in self.correlations_
            if index not in (j, k)
        ]
        self._invalidate(structure=True)
        return self

    def set_correlations(
        self, correlations: Iterable[tuple[int, int]]
    ) -> "OnlineGenerativeModel":
        """Replace the modeled correlation structure (no refit)."""
        self.correlations_ = [(int(j), int(k)) for j, k in correlations]
        self._invalidate(structure=True)
        return self

    def relearn_structure(
        self,
        learner: StructureLearner,
        threshold: float,
        nodes: Optional[Iterable[int]] = None,
    ) -> list[tuple[int, int]]:
        """Re-learn the correlation structure over the accumulated Λ.

        With ``nodes`` given, only those nodes' ℓ1 regressions are
        re-solved (:meth:`StructureLearner.refit_nodes`) — the incremental
        path after :meth:`add_lf`; otherwise the learner fits from scratch.
        The selected pairs become the model's correlation structure.
        """
        matrix = self.accumulated_matrix()
        if nodes is None or learner.dependency_weights_ is None:
            learner.fit(matrix)
        else:
            learner.refit_nodes(matrix, nodes)
        self.set_correlations(learner.select(threshold))
        return self.correlations_

    # ----------------------------------------------------------------- drain
    def drain(self) -> GenerativeModel:
        """Exact fit over everything accumulated; memoized per version.

        Delegates to a fresh same-config batch :class:`GenerativeModel`
        over :meth:`accumulated_matrix`, so the result is bit-identical to
        fitting that matrix directly.  The warm state is then re-anchored
        at the converged solution: accuracies and balance from the fitted
        model, sufficient statistics from one E-pass at the converged
        accuracies — subsequent :meth:`update` folds continue from there.
        """
        if self._drained is not None and self._drained_version == self.model_version_:
            return self._drained
        matrix = self.accumulated_matrix()
        if matrix.nnz == 0:
            raise NotFittedError(
                "cannot drain an OnlineGenerativeModel with no votes accumulated"
            )
        template = self._template
        model = GenerativeModel(
            method="em",
            epochs=template.epochs,
            accuracy_init=template.accuracy_init,
            smoothing=template.smoothing,
            damping=template.damping,
            max_accuracy=template.max_accuracy,
            learn_propensity=template.learn_propensity,
            class_balance=self.class_balance,
            non_adversarial=template.non_adversarial,
            cardinality=self.cardinality_,
            seed=template.seed,
        )
        model.fit(matrix, correlations=tuple(self.correlations_))
        # Re-anchor the warm state at the converged solution.
        self.accuracies_ = model.learned_accuracies()
        if self.class_balance is None:
            if self.cardinality_ > 2:
                self.balance_ = (
                    None if model.class_priors_ is None else model.class_priors_.copy()
                )
            elif model.class_prior_weight_ != 0.0:
                self.balance_ = float(sigmoid(2.0 * model.class_prior_weight_))
        expected_correct, vote_counts, mass, covered = self._expected_statistics(
            matrix, self.accuracies_
        )
        self.expected_correct_ = expected_correct
        self.vote_counts_ = vote_counts
        self.posterior_mass_ = mass
        self.covered_rows_ = covered
        self.model_version_ += 1
        self.updates_since_drain_ = 0
        self._drained = model
        self._drained_version = self.model_version_
        self._warm_model = None
        return model

    # --------------------------------------------------------------- serving
    def _serving_model(self) -> GenerativeModel:
        """The model posteriors are scored with at the current version.

        Freshly drained → the exact batch model (bitwise path).  Otherwise
        a shell :class:`GenerativeModel` assembled from the warm
        accuracies and balance, cached per version.
        """
        if self._drained is not None and self._drained_version == self.model_version_:
            return self._drained
        if self._warm_model is not None and self._warm_version == self.model_version_:
            return self._warm_model
        self._require_pinned()
        if self.accuracies_ is None:
            raise NotFittedError("OnlineGenerativeModel has no statistics to serve from")
        spec = self._spec()
        template = self._template
        model = GenerativeModel(
            method="em",
            epochs=template.epochs,
            accuracy_init=template.accuracy_init,
            smoothing=template.smoothing,
            damping=template.damping,
            max_accuracy=template.max_accuracy,
            learn_propensity=template.learn_propensity,
            class_balance=self.class_balance,
            non_adversarial=template.non_adversarial,
            cardinality=self.cardinality_,
            seed=template.seed,
        )
        weights = spec.initial_weights(accuracy_init=template.accuracy_init)
        k = self.cardinality_
        if k == 2:
            weights[spec.layout.accuracy_slice] = 0.5 * np.log(
                self.accuracies_ / (1.0 - self.accuracies_)
            )
        else:
            weights[spec.layout.accuracy_slice] = 0.5 * np.log(
                self.accuracies_ * (k - 1.0) / (1.0 - self.accuracies_)
            )
        if template.learn_propensity and self.num_rows_ > 0:
            coverage = np.clip(
                self.vote_counts_ / self.num_rows_, 1e-6, 1.0 - 1e-6
            )
            weights[spec.layout.propensity_slice] = 0.5 * np.log(
                coverage / (1.0 - coverage)
            )
        model.spec = spec
        model.weights = weights
        if self.class_balance is None:
            if k == 2:
                model.class_prior_weight_ = (
                    0.0
                    if self.balance_ is None
                    else 0.5 * float(np.log(self.balance_ / (1.0 - self.balance_)))
                )
            else:
                model.class_priors_ = (
                    None if self.balance_ is None else np.asarray(self.balance_)
                )
        else:
            model.class_prior_weight_ = template._initial_prior_weight() if k == 2 else 0.0
            if k > 2:
                priors = np.exp(template._initial_log_priors(k))
                model.class_priors_ = priors / priors.sum()
        self._warm_model = model
        self._warm_version = self.model_version_
        return model

    def posteriors(self, chunk) -> np.ndarray:
        """Posteriors for one chunk under the current model (no staleness check).

        The chunk is scored in its own storage (dense chunks through the
        dense reduction, sparse through the sparse one), so a freshly
        drained model's output is bit-identical to the batch model's
        ``predict_proba`` on the same input.
        """
        self._require_pinned()
        return self._serving_model().predict_proba(chunk)

    def serve_posteriors(
        self, chunks: Iterable, max_staleness: Optional[int] = None
    ) -> Iterator[ServedPosteriors]:
        """Stream posteriors for arriving chunks under the versioned model.

        Yields one :class:`ServedPosteriors` per chunk.  Before each chunk
        the staleness bound (``max_staleness`` here, else the constructor's)
        is enforced: if more statistics-changing updates have been folded
        since the last exact fit than the bound allows, the model drains
        first.  Serving never mutates the statistics, so interleaving
        :meth:`update` calls between served chunks is the intended usage.
        """
        bound = self.max_staleness if max_staleness is None else max_staleness
        for chunk in chunks:
            if bound is not None and self.updates_since_drain_ > bound:
                self.drain()
            yield ServedPosteriors(self.posteriors(chunk), self.model_version_)

    # ------------------------------------------------------------- durability
    _STATE_FORMAT = 1

    def save(self, store, prefix: str = "online") -> str:
        """Persist the full state as one durable block; returns the key.

        The block is stamped with ``epoch=model_version_``, so a
        :class:`~repro.labeling.blockstore.BlockStore` opened with
        ``retention="latest_epoch"`` deletes superseded snapshots as new
        ones land.
        """
        rows, cols, vals = self._triples()
        self._require_pinned()
        if self.cardinality_ > 2:
            mass = np.asarray(self.posterior_mass_, dtype=float)
        else:
            mass = np.asarray([float(self.posterior_mass_)])
        if self.balance_ is None:
            balance = np.empty(0)
        else:
            balance = np.atleast_1d(np.asarray(self.balance_, dtype=float))
        arrays = {
            "rows": rows,
            "cols": cols,
            "vals": vals,
            "expected_correct": self.expected_correct_,
            "vote_counts": self.vote_counts_,
            "accuracies": self.accuracies_,
            "posterior_mass": mass,
            "balance": balance,
        }
        meta = {
            "format": self._STATE_FORMAT,
            "num_rows": int(self.num_rows_),
            "num_lfs": int(self.num_lfs_),
            "cardinality": int(self.cardinality_),
            "correlations": [[int(j), int(k)] for j, k in self.correlations_],
            "covered_rows": int(self.covered_rows_),
            "model_version": int(self.model_version_),
            "updates_since_drain": int(self.updates_since_drain_),
        }
        key = f"{prefix}/state/v{self.model_version_}"
        store.put(key, arrays, meta, epoch=self.model_version_)
        return key

    @classmethod
    def load(cls, store, prefix: str = "online", **kwargs) -> "OnlineGenerativeModel":
        """Restore the newest saved state under ``prefix``.

        ``kwargs`` are constructor parameters (estimator configuration is
        not persisted — it belongs to the caller, like every model in this
        library).  The restored model serves and drains exactly as the
        saved one would; the drain memo itself is not persisted, so the
        first post-restore drain refits.
        """
        head = f"{prefix}/state/v"
        versions = [
            int(key[len(head):])
            for key in store.keys()
            if key.startswith(head) and key[len(head):].isdigit()
        ]
        if not versions:
            raise LabelModelError(
                f"no OnlineGenerativeModel state under {prefix!r} in {store.root}"
            )
        arrays, meta = store.get(f"{head}{max(versions)}")
        model = cls(cardinality=int(meta["cardinality"]), **kwargs)
        model.correlations_ = [tuple(pair) for pair in meta["correlations"]]
        model.num_lfs_ = int(meta["num_lfs"])
        model.cardinality_ = int(meta["cardinality"])
        model.num_rows_ = int(meta["num_rows"])
        model._append_triples(
            np.array(arrays["rows"]), np.array(arrays["cols"]), np.array(arrays["vals"])
        )
        model.expected_correct_ = np.array(arrays["expected_correct"])
        model.vote_counts_ = np.array(arrays["vote_counts"])
        model.accuracies_ = np.array(arrays["accuracies"])
        mass = np.array(arrays["posterior_mass"])
        model.posterior_mass_ = mass if model.cardinality_ > 2 else float(mass[0])
        balance = np.array(arrays["balance"])
        if balance.size == 0:
            model.balance_ = None
        elif model.cardinality_ > 2:
            model.balance_ = balance
        else:
            model.balance_ = float(balance[0])
        model.covered_rows_ = int(meta["covered_rows"])
        model.model_version_ = int(meta["model_version"])
        model.updates_since_drain_ = int(meta["updates_since_drain"])
        return model
