"""The Algorithm-1 modeling-strategy optimizer.

Given only the label matrix Λ, the optimizer decides (paper Section 3):

1. whether fitting the generative model is worth it at all, by comparing the
   advantage upper bound ``Ã*(Λ)`` against the user's advantage tolerance γ —
   if the bound is below the tolerance, the unweighted majority vote (MV) is
   selected and generative-model training is skipped entirely,
2. and, when the generative model (GM) is selected, which correlation
   threshold ε (and hence which correlation pairs) to model, by sweeping the
   structure-learning threshold and picking the elbow point of the
   (ε, #correlations) curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.labeling.matrix import LabelMatrix
from repro.labeling.sparse import as_sparse_storage
from repro.labelmodel.advantage import DEFAULT_WEIGHT_RANGE, estimate_advantage_bound
from repro.labelmodel.elbow import select_elbow_point
from repro.labelmodel.structure import StructureLearner, StructureSweepPoint


@dataclass
class ModelingStrategy:
    """The optimizer's decision.

    Attributes
    ----------
    strategy:
        ``"MV"`` (skip generative training, use unweighted majority vote) or
        ``"GM"`` (train the generative model).
    advantage_bound:
        The computed ``Ã*(Λ)``.
    correlation_threshold:
        Selected ε (``None`` when the strategy is MV or no sweep was run).
    correlations:
        Correlation pairs to include in the generative model.
    sweep:
        The full (ε, #correlations) sweep used for elbow selection.
    """

    strategy: str
    advantage_bound: float
    correlation_threshold: Optional[float] = None
    correlations: list[tuple[int, int]] = field(default_factory=list)
    sweep: list[StructureSweepPoint] = field(default_factory=list)

    @property
    def use_generative_model(self) -> bool:
        """True when the generative model should be trained."""
        return self.strategy == "GM"


class ModelingStrategyOptimizer:
    """Algorithm 1: choose MV vs GM and, for GM, the correlation structure.

    Parameters
    ----------
    advantage_tolerance:
        γ — the minimum predicted advantage that justifies training the
        generative model.
    search_resolution:
        η — the step of the ε sweep; thresholds ``ε = i·η`` for
        ``i = 1 .. 1/(2η)`` are evaluated (so the sweep covers (0, 0.5]).
    learn_correlations:
        When ``False`` the optimizer only decides MV vs GM and models no
        correlations (the independent model); this matches the ablation in
        Table 1, which uses accuracy factors only.
    weight_range:
        ``(w_min, w̄, w_max)`` assumption for the advantage bound.
    structure_learner:
        Optionally, a pre-configured :class:`StructureLearner`.
    """

    def __init__(
        self,
        advantage_tolerance: float = 0.01,
        search_resolution: float = 0.05,
        learn_correlations: bool = True,
        weight_range: tuple[float, float, float] = DEFAULT_WEIGHT_RANGE,
        structure_learner: Optional[StructureLearner] = None,
    ) -> None:
        if advantage_tolerance < 0:
            raise ConfigurationError(
                f"advantage_tolerance must be >= 0, got {advantage_tolerance}"
            )
        if not 0 < search_resolution <= 0.5:
            raise ConfigurationError(
                f"search_resolution must lie in (0, 0.5], got {search_resolution}"
            )
        self.advantage_tolerance = advantage_tolerance
        self.search_resolution = search_resolution
        self.learn_correlations = learn_correlations
        self.weight_range = weight_range
        self.structure_learner = structure_learner or StructureLearner()

    def choose(self, label_matrix: LabelMatrix | np.ndarray) -> ModelingStrategy:
        """Run Algorithm 1 on a label matrix and return the chosen strategy.

        The MV-vs-GM decision rests on the binary modeling-advantage theory
        (Section 3), so categorical matrices (a :class:`LabelMatrix` with
        ``cardinality > 2``) skip it: the generative model is always
        selected (``advantage_bound`` is recorded as NaN) and only the
        correlation-structure sweep runs, via the structure learner's
        anchor-class reduction.
        """
        if isinstance(label_matrix, LabelMatrix):
            cardinality = label_matrix.cardinality
        else:
            cardinality = 2
            storage = as_sparse_storage(label_matrix)
            values = storage.data if storage is not None else np.asarray(label_matrix)
            if values.size and int(values.max()) > 1:
                raise ConfigurationError(
                    "choose() received a raw matrix with categorical labels; wrap it "
                    "in LabelMatrix(values, cardinality=k) so the advantage bound "
                    "(binary-only theory) is skipped rather than fed class ids"
                )
        if cardinality > 2:
            advantage_bound = float("nan")
        else:
            advantage_bound = estimate_advantage_bound(label_matrix, self.weight_range)
            if advantage_bound < self.advantage_tolerance:
                return ModelingStrategy(strategy="MV", advantage_bound=advantage_bound)
        if not self.learn_correlations:
            return ModelingStrategy(strategy="GM", advantage_bound=advantage_bound)
        thresholds = self._sweep_thresholds()
        self.structure_learner.fit(label_matrix)
        sweep = self.structure_learner.sweep(thresholds)
        elbow = select_elbow_point(
            [point.threshold for point in sweep],
            [point.num_correlations for point in sweep],
        )
        selected = next(point for point in sweep if np.isclose(point.threshold, elbow))
        return ModelingStrategy(
            strategy="GM",
            advantage_bound=advantage_bound,
            correlation_threshold=float(elbow),
            correlations=list(selected.correlations),
            sweep=sweep,
        )

    def _sweep_thresholds(self) -> list[float]:
        """The ε grid: ``i · η`` for ``i = 1 .. floor(1 / (2η))``."""
        count = int(np.floor(1.0 / (2.0 * self.search_resolution)))
        return [round((i + 1) * self.search_resolution, 10) for i in range(count)]
