"""Structure learning: selecting which labeling-function correlations to model.

The paper (and Bach et al., ICML 2017) selects pairwise dependencies with an
ℓ1-regularized pseudolikelihood estimator over the labeling-function outputs
alone, then thresholds the resulting dependency weights at ε.  This module
implements the node-wise formulation of that estimator:

for every labeling function ``j`` we fit an ℓ1-regularized logistic
regression predicting the sign of ``Λ_{·,j}`` (restricted to rows where LF
``j`` votes) from the votes of all other labeling functions **plus a
majority-vote proxy for the latent label**.  The proxy for node ``j``
excludes LF ``j``'s own vote (``sign(Σ_{k≠j} Λ_{i,k})``) — including it
would leak the regression target into a feature and distort the dependency
scores.  Controlling for the label proxy means a large coefficient on LF
``k`` indicates dependence between ``j`` and ``k`` *beyond what the shared
true label explains* — exactly the "double-counting" correlations the
generative model needs to know about.  Node-wise ℓ1 logistic regression is
the standard consistent estimator for Ising/Markov-network structure
(Ravikumar et al.), so this is a faithful, pure-numpy substitute for the
pseudolikelihood SGD in the original system.

Sparse-backed label matrices are fitted from CSC column slices: each node's
design matrix is assembled from the non-abstain entries of the other columns
restricted to the rows where the node votes, so memory stays O(votes_j · n)
per node and the full dense Λ is never materialized.

The selection threshold ε plays the paper's role exactly: a pair ``(j, k)``
is selected when ``max(|w_{j←k}|, |w_{k←j}|) ≥ ε``, and sweeping ε produces
the (ε, #correlations) curve whose elbow the optimizer picks.

Categorical label matrices (classes ``1..k``, ``0`` = abstain) are handled
by a per-node one-vs-rest reduction: node ``j`` is regressed against its
*anchor class* (its most frequent emitted class), with every other LF's vote
recoded to ``+1`` (voted the anchor class) / ``-1`` (voted any other class)
/ ``0`` (abstained) and the label proxy built from the same recoding.  This
is the Ising-style node-wise regression applied to the anchor-class
indicator field, so for ``cardinality = 2`` it coincides with the signed
formulation, and for ``k > 2`` a large coefficient still means "LF ``k``
agrees with LF ``j`` beyond what the shared label explains".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import LabelModelError, NotFittedError
from repro.labeling.matrix import LabelMatrix
from repro.labeling.sparse import (
    SparseLabelMatrix,
    as_sparse_storage,
    class_vote_counts,
    intersect_sorted,
)
from repro.types import ABSTAIN
from repro.utils.mathutils import sigmoid
from repro.utils.rng import SeedLike, ensure_rng


def _as_array(label_matrix: LabelMatrix | np.ndarray) -> np.ndarray:
    if isinstance(label_matrix, LabelMatrix):
        return label_matrix.values
    return np.asarray(label_matrix, dtype=np.int64)


@dataclass
class StructureSweepPoint:
    """One point of the threshold sweep: ε and the correlations selected at ε."""

    threshold: float
    correlations: list[tuple[int, int]]

    @property
    def num_correlations(self) -> int:
        """Number of selected pairs at this threshold."""
        return len(self.correlations)


class StructureLearner:
    """Node-wise ℓ1 pseudolikelihood estimator of LF dependency weights.

    Parameters
    ----------
    l1_strength:
        ℓ1 penalty applied to the dependency coefficients during each
        node-wise regression (the label-proxy and bias terms are not
        penalized).
    max_iter:
        Proximal-gradient (ISTA) iterations per node.
    tol:
        Early-stopping tolerance on the coefficient update norm.
    min_votes:
        Nodes with fewer than this many non-abstaining rows are skipped
        (their dependency weights stay zero) — there is no signal to fit.
    seed:
        Seed for the randomized spectral-norm (power-iteration) estimate of
        each node's Lipschitz constant.
    """

    def __init__(
        self,
        l1_strength: float = 0.01,
        max_iter: int = 250,
        tol: float = 1e-6,
        min_votes: int = 10,
        seed: SeedLike = 0,
    ) -> None:
        if l1_strength < 0:
            raise LabelModelError(f"l1_strength must be >= 0, got {l1_strength}")
        self.l1_strength = l1_strength
        self.max_iter = max_iter
        self.tol = tol
        self.min_votes = min_votes
        self.seed = seed
        self.dependency_weights_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ fitting
    def _resolve_storage(
        self, label_matrix: LabelMatrix | np.ndarray
    ) -> tuple[Optional[SparseLabelMatrix], Optional[np.ndarray], bool]:
        """``(sparse, dense, categorical)`` for either storage backend.

        A :class:`LabelMatrix` selects the estimator by its declared
        ``cardinality``; raw arrays/storages fall back to sniffing the values
        (any label above 1 means categorical).
        """
        if isinstance(label_matrix, LabelMatrix):
            categorical: Optional[bool] = label_matrix.cardinality > 2
        else:
            categorical = None
        sparse = as_sparse_storage(label_matrix)
        if sparse is not None:
            if categorical is None:
                categorical = bool(sparse.data.size) and int(sparse.data.max()) > 1
            return sparse, None, categorical
        matrix = _as_array(label_matrix).astype(float)
        if categorical is None:
            categorical = bool(matrix.size) and matrix.max() > 1
        return None, matrix, categorical

    def fit(self, label_matrix: LabelMatrix | np.ndarray) -> "StructureLearner":
        """Estimate the (n, n) matrix of absolute dependency weights."""
        sparse, matrix, categorical = self._resolve_storage(label_matrix)
        n = (sparse if sparse is not None else matrix).shape[1]
        self.dependency_weights_ = np.zeros((n, n))
        if n >= 2:
            self._solve_nodes(sparse, matrix, categorical, range(n))
        return self

    def refit_nodes(
        self,
        label_matrix: LabelMatrix | np.ndarray,
        nodes: Sequence[int],
    ) -> "StructureLearner":
        """Re-solve only the given nodes' regressions, keeping the rest.

        The node-wise estimator decomposes per node: node ``j``'s row of
        ``dependency_weights_`` depends only on the label matrix (and the
        learner's seed), never on the other rows — so re-solving a subset
        is bit-identical to the corresponding rows of a full :meth:`fit`.
        This is the incremental path for an online model that added or
        edited a labeling function: re-solve the new node (and, if desired,
        its neighbors) instead of all ``n`` regressions.

        A matrix with *more* columns than the fitted state grows the weight
        matrix with zero-padded rows/columns at the end (append semantics,
        matching ``OnlineGenerativeModel.add_lf``).  A matrix with fewer
        columns is rejected — removal changes the column mapping, so the
        caller must realign ``dependency_weights_`` first (e.g. with
        ``np.delete`` on both axes).
        """
        sparse, matrix, categorical = self._resolve_storage(label_matrix)
        n = (sparse if sparse is not None else matrix).shape[1]
        nodes = sorted({int(j) for j in nodes})
        if nodes and (nodes[0] < 0 or nodes[-1] >= n):
            raise LabelModelError(
                f"nodes must lie in [0, {n}), got {nodes[0]}..{nodes[-1]}"
            )
        if self.dependency_weights_ is None:
            self.dependency_weights_ = np.zeros((n, n))
        elif self.dependency_weights_.shape[0] < n:
            grown = np.zeros((n, n))
            old = self.dependency_weights_.shape[0]
            grown[:old, :old] = self.dependency_weights_
            self.dependency_weights_ = grown
        elif self.dependency_weights_.shape[0] > n:
            raise LabelModelError(
                f"label matrix has {n} LFs but the fitted state has "
                f"{self.dependency_weights_.shape[0]}; realign "
                "dependency_weights_ (np.delete the removed row and column) "
                "before refitting nodes"
            )
        self.dependency_weights_[nodes, :] = 0.0
        if n >= 2 and nodes:
            self._solve_nodes(sparse, matrix, categorical, nodes)
        return self

    def _solve_nodes(
        self,
        sparse: Optional[SparseLabelMatrix],
        matrix: Optional[np.ndarray],
        categorical: bool,
        nodes: Sequence[int],
    ) -> None:
        """Dispatch the per-node regressions to the storage's assembly path."""
        if sparse is not None:
            self._solve_sparse_nodes(sparse, categorical, nodes)
        elif categorical:
            self._solve_dense_categorical_nodes(matrix, nodes)
        else:
            self._solve_dense_nodes(matrix, nodes)

    def _solve_dense_nodes(self, matrix: np.ndarray, nodes: Sequence[int]) -> None:
        m, n = matrix.shape
        row_totals = matrix.sum(axis=1)
        weights = self.dependency_weights_
        for j in nodes:
            voted = matrix[:, j] != ABSTAIN
            if voted.sum() < self.min_votes:
                continue
            target = (matrix[voted, j] > 0).astype(float)
            others = [k for k in range(n) if k != j]
            # The label proxy excludes LF j's own vote; otherwise the target
            # leaks into the features and distorts the dependency scores.
            mv_proxy = np.sign(row_totals[voted] - matrix[voted, j])
            # Feature order: other LFs, then the label proxy, then the bias.
            features = np.column_stack(
                [matrix[voted][:, others], mv_proxy, np.ones(int(voted.sum()))]
            )
            coefficients = self._l1_logistic(features, target, num_penalized=len(others))
            weights[j, others] = np.abs(coefficients[: len(others)])

    def _solve_dense_categorical_nodes(
        self, matrix: np.ndarray, nodes: Sequence[int]
    ) -> None:
        """Node-wise regressions over the anchor-class recoding (see module doc).

        Each node's design matrix is the whole row block recoded against that
        node's anchor class — O(votes_j · n) per node, the same as the binary
        assembly.
        """
        m, n = matrix.shape
        weights = self.dependency_weights_
        for j in nodes:
            voted = matrix[:, j] != ABSTAIN
            if voted.sum() < self.min_votes:
                continue
            votes_j = matrix[voted, j]
            anchor = self._anchor_class(votes_j)
            block = matrix[voted]
            signed = np.where(block == ABSTAIN, 0.0, np.where(block == anchor, 1.0, -1.0))
            target = (votes_j == anchor).astype(float)
            others = [k for k in range(n) if k != j]
            mv_proxy = np.sign(signed.sum(axis=1) - signed[:, j])
            features = np.column_stack(
                [signed[:, others], mv_proxy, np.ones(int(voted.sum()))]
            )
            coefficients = self._l1_logistic(features, target, num_penalized=len(others))
            weights[j, others] = np.abs(coefficients[: len(others)])

    @staticmethod
    def _anchor_class(votes: np.ndarray) -> int:
        """The node's most frequent emitted class (lowest id on ties)."""
        values, counts = np.unique(votes, return_counts=True)
        return int(values[np.argmax(counts)])

    def _solve_sparse_nodes(
        self, sparse: SparseLabelMatrix, categorical: bool, nodes: Sequence[int]
    ) -> None:
        """Node-wise regressions assembled from CSC column slices.

        Produces the same dependency weights as the dense path: each node's
        design matrix holds the same values, merely gathered from the stored
        entries instead of sliced out of a dense array.
        """
        m, n = sparse.shape
        col_indptr, entry_rows, entry_vals = sparse.csc()
        if categorical:
            # One O(nnz) pass: per-row counts of every class, so each node's
            # anchor-class totals are a column lookup rather than a rescan.
            cardinality = max(2, int(entry_vals.max())) if entry_vals.size else 2
            per_class_counts = class_vote_counts(sparse, cardinality)
            row_nnz = sparse.row_nnz()
            row_totals = None
        else:
            row_totals = sparse.row_sums()
        weights = self.dependency_weights_
        for j in nodes:
            rows_j = entry_rows[col_indptr[j] : col_indptr[j + 1]]
            vals_j = entry_vals[col_indptr[j] : col_indptr[j + 1]]
            if rows_j.size < self.min_votes:
                continue
            if categorical:
                # Anchor-class recoding (see module doc): the node's own
                # votes, every partner column, and the label proxy are all
                # mapped to +-1 against the node's most frequent class.
                anchor = self._anchor_class(vals_j)
                target = (vals_j == anchor).astype(float)
                own_signed = np.where(vals_j == anchor, 1.0, -1.0)
                signed_totals = 2.0 * per_class_counts[:, anchor - 1] - row_nnz
            else:
                anchor = None
                target = (vals_j > 0).astype(float)
                own_signed = vals_j
                signed_totals = row_totals
            others = [k for k in range(n) if k != j]
            design = np.zeros((rows_j.size, n))
            for k in others:
                rows_k = entry_rows[col_indptr[k] : col_indptr[k + 1]]
                vals_k = entry_vals[col_indptr[k] : col_indptr[k + 1]]
                # The shared alignment primitive of the kernel layer: both
                # slices are sorted and unique, so one searchsorted replaces
                # the concatenated sort of np.intersect1d in this O(n²)-pair
                # loop.
                in_j, in_k = intersect_sorted(rows_j, rows_k)
                if categorical:
                    design[in_j, k] = np.where(vals_k[in_k] == anchor, 1.0, -1.0)
                else:
                    design[in_j, k] = vals_k[in_k]
            mv_proxy = np.sign(signed_totals[rows_j] - own_signed)
            features = np.column_stack([design[:, others], mv_proxy, np.ones(rows_j.size)])
            coefficients = self._l1_logistic(features, target, num_penalized=len(others))
            weights[j, others] = np.abs(coefficients[: len(others)])

    def _l1_logistic(
        self, features: np.ndarray, target: np.ndarray, num_penalized: int
    ) -> np.ndarray:
        """ISTA for ℓ1-regularized logistic regression.

        Only the first ``num_penalized`` coefficients receive the ℓ1 penalty.
        """
        m, d = features.shape
        coefficients = np.zeros(d)
        lipschitz = 0.25 * self._spectral_norm_squared(features, seed=self.seed) / m
        step = 1.0 / max(lipschitz, 1e-8)
        penalty = np.zeros(d)
        penalty[:num_penalized] = self.l1_strength
        for _ in range(self.max_iter):
            predictions = sigmoid(features @ coefficients)
            gradient = features.T @ (predictions - target) / m
            updated = coefficients - step * gradient
            updated = np.sign(updated) * np.maximum(np.abs(updated) - step * penalty, 0.0)
            if np.linalg.norm(updated - coefficients) < self.tol:
                coefficients = updated
                break
            coefficients = updated
        return coefficients

    @staticmethod
    def _spectral_norm_squared(
        features: np.ndarray, iterations: int = 20, seed: SeedLike = 0
    ) -> float:
        """Estimate ``λ_max(XᵀX)`` with a few power iterations.

        The starting vector comes from the learner's configured ``seed`` (an
        integer seed yields the same start on every call, keeping repeated
        fits deterministic).
        """
        rng = ensure_rng(seed)
        vector = rng.standard_normal(features.shape[1])
        vector /= np.linalg.norm(vector) + 1e-12
        for _ in range(iterations):
            vector = features.T @ (features @ vector)
            norm = np.linalg.norm(vector)
            if norm < 1e-12:
                return 1.0
            vector /= norm
        return float(vector @ (features.T @ (features @ vector)))

    # ---------------------------------------------------------------- selection
    def _require_fitted(self) -> np.ndarray:
        if self.dependency_weights_ is None:
            raise NotFittedError("StructureLearner must be fit before selecting correlations")
        return self.dependency_weights_

    def pair_scores(self) -> dict[tuple[int, int], float]:
        """Symmetric dependency score per pair: ``max(|w_{j←k}|, |w_{k←j}|)``."""
        weights = self._require_fitted()
        n = weights.shape[0]
        scores = {}
        for j in range(n):
            for k in range(j + 1, n):
                scores[(j, k)] = float(max(weights[j, k], weights[k, j]))
        return scores

    def select(self, threshold: float) -> list[tuple[int, int]]:
        """Pairs whose dependency score reaches ``threshold`` (the paper's ε)."""
        if threshold < 0:
            raise LabelModelError(f"threshold must be >= 0, got {threshold}")
        return sorted(
            pair for pair, score in self.pair_scores().items() if score >= threshold
        )

    def sweep(self, thresholds: Sequence[float]) -> list[StructureSweepPoint]:
        """Evaluate :meth:`select` at several thresholds (one structure-learning fit)."""
        return [
            StructureSweepPoint(threshold=float(t), correlations=self.select(float(t)))
            for t in thresholds
        ]


def learn_structure(
    label_matrix: LabelMatrix | np.ndarray,
    threshold: float,
    l1_strength: float = 0.01,
    max_iter: int = 250,
    seed: SeedLike = 0,
) -> list[tuple[int, int]]:
    """One-shot convenience wrapper: fit a :class:`StructureLearner` and select pairs."""
    learner = StructureLearner(l1_strength=l1_strength, max_iter=max_iter, seed=seed)
    learner.fit(label_matrix)
    return learner.select(threshold)
