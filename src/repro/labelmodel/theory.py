"""Theoretical bounds on the optimal modeling advantage (paper Section 3.1.1).

Two regimes bracket where the generative model can help:

* **Low label density** (Proposition 1): with non-adversarial labeling
  functions the expected optimal advantage is bounded by the expected number
  of disagreeing label pairs, which scales as ``d̄² ᾱ (1 - ᾱ)`` — quadratic
  in the mean label density ``d̄ = n · p_l``.
* **High label density** (Theorem 1, from Li, Yu & Zhou's analysis of the
  symmetric Dawid–Skene model): the unweighted majority vote converges
  exponentially, giving the bound ``exp(-2 p_l (ᾱ - 1/2)² d̄)``.

The middle-density regime between the two bounds is where the paper (and our
Figure-4 benchmark) expects the generative model to pay off.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import require_probability


def low_density_upper_bound(label_density: float, mean_accuracy: float) -> float:
    """Proposition 1: ``E[A*] <= d̄² ᾱ (1 - ᾱ)``.

    Parameters
    ----------
    label_density:
        Mean number of non-abstaining labels per data point (``d̄``).
    mean_accuracy:
        Average labeling-function accuracy ``ᾱ`` (must be in [0, 1]).
    """
    if label_density < 0:
        raise ConfigurationError(f"label_density must be >= 0, got {label_density}")
    alpha = require_probability("mean_accuracy", mean_accuracy)
    return float(label_density**2 * alpha * (1.0 - alpha))


def high_density_upper_bound(
    label_density: float, mean_accuracy: float, label_propensity: float
) -> float:
    """Theorem 1: ``E[A*] <= exp(-2 p_l (ᾱ - 1/2)² d̄)``.

    Valid when the mean labeling-function accuracy exceeds 1/2; for
    ``mean_accuracy <= 0.5`` the bound is vacuous and 1.0 is returned.

    Parameters
    ----------
    label_density:
        Mean number of non-abstaining labels per data point (``d̄ = n p_l``).
    mean_accuracy:
        Average labeling-function accuracy ``ᾱ``.
    label_propensity:
        Probability ``p_l`` that a labeling function emits a non-abstaining
        label on any given data point.
    """
    if label_density < 0:
        raise ConfigurationError(f"label_density must be >= 0, got {label_density}")
    alpha = require_probability("mean_accuracy", mean_accuracy)
    propensity = require_probability("label_propensity", label_propensity)
    if alpha <= 0.5:
        return 1.0
    exponent = -2.0 * propensity * (alpha - 0.5) ** 2 * label_density
    return float(np.exp(exponent))


def combined_upper_bound(
    label_density: float, mean_accuracy: float, label_propensity: float
) -> float:
    """The tighter of the low-density and high-density bounds.

    Useful for plotting the theoretical envelope over a density sweep
    (Figure 4): the quadratic bound dominates at low density, the exponential
    bound at high density, and their crossover brackets the mid-density
    regime.
    """
    low = low_density_upper_bound(label_density, mean_accuracy)
    high = high_density_upper_bound(label_density, mean_accuracy, label_propensity)
    return float(min(low, high, 1.0))
