"""End-to-end pipeline orchestration."""

from repro.pipeline.snorkel import PipelineConfig, PipelineResult, SnorkelPipeline

__all__ = ["SnorkelPipeline", "PipelineConfig", "PipelineResult"]
