"""The end-to-end Snorkel pipeline.

``SnorkelPipeline`` wires the stages of Figure 2 together:

1. apply the labeling functions over the training candidates → label matrix Λ,
2. run the modeling-strategy optimizer (Algorithm 1) to choose between
   unweighted majority vote and the generative model (and, for the latter,
   which correlations to include),
3. produce probabilistic training labels Ỹ,
4. train a noise-aware discriminative model on candidate *features* and Ỹ,
5. evaluate the generative and discriminative stages on the held-out test
   split.

**Label conventions.**  The pipeline follows the task's ``cardinality``:

* binary tasks (``cardinality=2``) use signed labels ``{-1, +1}`` with ``0``
  = abstain; ``training_probs`` is the ``(m,)`` positive-class probability
  vector, the end model defaults to noise-aware logistic regression, and
  test reports come from :class:`BinaryScorer` (precision/recall/F1).
* categorical tasks (``cardinality=k > 2``, e.g. the crowdsourcing task of
  Section 4.1.2) use classes ``1..k`` with ``0`` = abstain; the same
  generative model is trained with its k-ary estimator, ``training_probs``
  is the ``(m, k)`` posterior distribution matrix, the end model defaults
  to noise-aware softmax regression, and test reports come from
  :class:`MultiClassScorer` (accuracy + macro-F1).  The MV-vs-GM
  modeling-advantage decision is binary theory, so Algorithm 1 always
  selects the generative model here (the structure sweep still runs).

**Out-of-core mode.**  With ``PipelineConfig(streaming=True)`` (or via
:meth:`SnorkelPipeline.run_streams` directly) the run is one pass over a
candidate generator per split: the fused engine task labels *and* featurizes
each chunk (:meth:`repro.labeling.applier.LFApplier.apply_with_features`),
Λ accumulates as triples, features accumulate as chunk-ordered CSR blocks,
and the end model trains from the block stream via ``fit_stream`` — neither
the candidate list nor a dense ``(m, d)`` feature matrix ever exists.  Both
modes train the end model on the deterministic stream-order minibatch
schedule (``shuffle=False``), so streaming and materialized runs produce
value-identical end-model probabilities.

The pipeline never touches training-split gold labels; they exist in the
task datasets purely so the benchmark harness can report oracle statistics.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.context.candidates import Candidate
from repro.datasets.base import TaskDataset
from repro.discriminative.base import NoiseAwareClassifier
from repro.discriminative.featurizers import RelationFeaturizer
from repro.discriminative.logistic import NoiseAwareLogisticRegression
from repro.discriminative.softmax import NoiseAwareSoftmaxRegression
from repro.evaluation.scorer import (
    BinaryScorer,
    MultiClassScorer,
    MultiClassScoreReport,
    ScoreReport,
)
from repro.exceptions import ConfigurationError
from repro.labeling.applier import PUSHDOWN_MODES, VALIDATE_MODES, LFApplier
from repro.labeling.blockstore import (
    RETENTION_POLICIES,
    BlockStore,
    ChunkCheckpointer,
    EpochCheckpoint,
)
from repro.labeling.engine import BACKENDS, TRANSPORTS
from repro.labeling.lf import LabelingFunction
from repro.labeling.matrix import LabelMatrix
from repro.labelmodel.generative import GenerativeModel
from repro.labelmodel.kernels import KERNELS
from repro.labelmodel.majority import MajorityVoter, MultiClassMajorityVoter
from repro.labelmodel.online import OnlineGenerativeModel
from repro.labelmodel.optimizer import ModelingStrategy, ModelingStrategyOptimizer

AnyScoreReport = Union[ScoreReport, MultiClassScoreReport]


@dataclass
class PipelineConfig:
    """Configuration of one pipeline execution."""

    use_optimizer: bool = True
    force_strategy: Optional[str] = None  # "MV" or "GM" to bypass the optimizer
    learn_correlations: bool = True
    #: Store Λ sparsely (CSR of the non-abstain entries) and run the label
    #: modeling stage through the sparse hot paths.  Labels and probabilistic
    #: outputs are identical to the dense run; memory and fit time scale with
    #: the number of emitted labels instead of with m·n.
    sparse_labels: bool = False
    #: Executor backend for LF application (``"sequential"``, ``"threads"``,
    #: or ``"processes"`` — see :mod:`repro.labeling.engine`).  The label
    #: matrix is identical for every backend.
    applier_backend: str = "sequential"
    #: Worker count for the pool backends (``None`` = one per available CPU);
    #: ignored by the sequential backend.
    applier_workers: Optional[int] = 1
    #: Chunk transport of the ``"processes"`` backend (see
    #: :data:`repro.labeling.engine.plan.TRANSPORTS`): ``"pickle"`` ships
    #: chunks/results as pickled bytes over each worker's pipe, ``"shm"``
    #: moves the bulk bytes through reusable shared-memory slots, ``"auto"``
    #: (default) picks ``shm`` when available.  One persistent worker pool
    #: serves every stage of a run — apply, fused apply+featurize — so
    #: workers are spawned exactly once however many splits are processed.
    #: Results are bit-identical across transports; the in-process backends
    #: ignore the setting.
    engine_transport: str = "auto"
    #: Static-analysis gate over the LF suite before application (see
    #: :mod:`repro.analysis`): ``"off"`` (default), ``"warn"`` to attach an
    #: :class:`~repro.analysis.diagnostics.AnalysisReport` to the apply
    #: report, or ``"error"`` to abort the run on ERROR-severity findings.
    lf_validate: str = "off"
    #: Columnar-kernel LF execution (see :mod:`repro.labeling.pushdown`):
    #: ``"off"`` (default) interprets every LF per candidate, ``"auto"``
    #: compiles the compilable subset into vectorized kernels with per-LF
    #: interpreted fallback, ``"require"`` aborts if any LF cannot be
    #: compiled.  The label matrix is bit-identical in every mode.
    lf_pushdown: str = "off"
    #: Featurize candidates into CSR feature matrices and train the end model
    #: sparsely; feature values and trained weights match the dense run.
    sparse_features: bool = False
    #: Run the whole pipeline out-of-core: one pass over a candidate
    #: generator per split, fused LF application + featurization through the
    #: execution engine, and minibatch end-model training from CSR feature
    #: blocks.  Neither the candidate list nor a dense ``(m, d)`` feature
    #: matrix is ever materialized; end-model probabilities are
    #: value-identical to the materialized run.
    streaming: bool = False
    #: Candidates per engine work unit, shared by LF application and
    #: streaming featurization.  Results are independent of this value.
    chunk_size: int = 1024
    #: Root directory of the crash-safe block store
    #: (:mod:`repro.labeling.blockstore`).  When set (streaming mode only),
    #: every fused chunk result, the label-modeling output, and the end
    #: model's per-epoch training state are persisted durably as the run
    #: progresses, and a restarted run resumes from the last durable point
    #: with bit-identical results.  ``None`` (default) keeps everything in
    #: RAM.
    checkpoint_dir: Optional[str] = None
    #: With ``checkpoint_dir`` set: resume from compatible existing
    #: checkpoints (the default), or clear the store and start fresh.  A
    #: store written under a different configuration fingerprint (other LF
    #: suite, chunk size, featurizer width, seed, ...) is cleared
    #: automatically — stale blocks are never replayed.
    resume: bool = True
    #: Space-reclamation policy of the block store (see
    #: :class:`repro.labeling.blockstore.BlockStore`): ``"keep_all"``
    #: (default) keeps every durable block; ``"latest_epoch"`` deletes
    #: superseded epoch-stamped snapshots (e.g. the online model's
    #: versioned statistics) as new ones land and prunes chunk blocks a
    #: shorter re-run left dead, so a long-lived checkpoint dir stops
    #: growing without bound.
    checkpoint_retention: str = "keep_all"
    #: Run the label-modeling stage through the online incremental
    #: estimator (:class:`repro.labelmodel.online.OnlineGenerativeModel`):
    #: Λ's rows are folded in chunk by chunk (``chunk_size`` rows at a
    #: time, matching the engine's chunk tasks in streaming mode), the
    #: model's versioned statistics are persisted durably when a
    #: ``checkpoint_dir`` store is attached, and the served model is the
    #: fully-drained fit — within 1e-8 of the batch run (bit-identical
    #: with ``sparse_labels=True``).
    online: bool = False
    #: Soft per-chunk deadline in seconds for the ``"processes"`` backend
    #: (see :class:`repro.labeling.engine.plan.ExecutionPlan`): a hung
    #: worker is killed and its chunk resubmitted instead of deadlocking
    #: the run.  ``None`` (default) waits indefinitely.
    engine_chunk_timeout: Optional[float] = None
    #: Restore the historical per-epoch shuffled end-model schedule (the
    #: pre-streaming default).  Off, both modes train in deterministic
    #: stream order, which is what makes ``streaming=True`` value-identical
    #: to the materialized run; a one-pass block stream cannot realize a
    #: global shuffle, so this flag is incompatible with ``streaming=True``.
    end_model_shuffle: bool = False
    #: Sampling kernel of the generative stage's Gibbs chains (CD training):
    #: ``"auto"``/``"vectorized"`` for the plan-based fused-color updates of
    #: :mod:`repro.labelmodel.kernels`, ``"reference"`` for the exact
    #: per-column loop.  The deterministic EM paths are kernel-independent.
    gibbs_kernel: str = "auto"
    advantage_tolerance: float = 0.01
    generative_epochs: int = 20
    generative_step_size: float = 0.05
    discriminative_epochs: int = 40
    num_features: int = 1024
    class_balance: Optional[float] = None
    keep_uncovered: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.force_strategy not in (None, "MV", "GM"):
            raise ConfigurationError(
                f"force_strategy must be None, 'MV' or 'GM', got {self.force_strategy!r}"
            )
        if self.applier_backend not in BACKENDS:
            raise ConfigurationError(
                f"applier_backend must be one of {BACKENDS}, got {self.applier_backend!r}"
            )
        if self.applier_workers is not None and self.applier_workers < 1:
            raise ConfigurationError(
                f"applier_workers must be >= 1 or None, got {self.applier_workers}"
            )
        if self.lf_validate not in VALIDATE_MODES:
            raise ConfigurationError(
                f"lf_validate must be one of {VALIDATE_MODES}, got {self.lf_validate!r}"
            )
        if self.lf_pushdown not in PUSHDOWN_MODES:
            raise ConfigurationError(
                f"lf_pushdown must be one of {PUSHDOWN_MODES}, got {self.lf_pushdown!r}"
            )
        if self.engine_transport not in TRANSPORTS:
            raise ConfigurationError(
                f"engine_transport must be one of {TRANSPORTS}, "
                f"got {self.engine_transport!r}"
            )
        if self.gibbs_kernel not in KERNELS:
            raise ConfigurationError(
                f"gibbs_kernel must be one of {KERNELS}, got {self.gibbs_kernel!r}"
            )
        if self.chunk_size <= 0:
            raise ConfigurationError(
                f"chunk_size must be positive, got {self.chunk_size}"
            )
        if self.streaming and self.end_model_shuffle:
            raise ConfigurationError(
                "end_model_shuffle requires random row access and cannot be "
                "honored by a streaming run; unset one of the two"
            )
        if self.engine_chunk_timeout is not None and self.engine_chunk_timeout <= 0:
            raise ConfigurationError(
                f"engine_chunk_timeout must be positive, got {self.engine_chunk_timeout}"
            )
        if self.checkpoint_retention not in RETENTION_POLICIES:
            raise ConfigurationError(
                f"checkpoint_retention must be one of {RETENTION_POLICIES}, "
                f"got {self.checkpoint_retention!r}"
            )


@dataclass
class PipelineResult:
    """Everything produced by one pipeline execution."""

    task_name: str
    strategy: Optional[ModelingStrategy]
    label_matrix: LabelMatrix
    #: ``(m,)`` positive-class probabilities for binary tasks, ``(m, k)``
    #: class distributions for categorical ones.
    training_probs: np.ndarray
    generative_test_report: AnyScoreReport
    discriminative_test_report: AnyScoreReport
    generative_model: Optional[GenerativeModel]
    discriminative_model: NoiseAwareClassifier
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def generative_f1(self) -> float:
        """Test F1 of the label-model stage (Snorkel Gen. column of Table 3).

        Macro-F1 on categorical tasks.
        """
        return self.generative_test_report.f1

    @property
    def discriminative_f1(self) -> float:
        """Test F1 of the end model (Snorkel Disc. column of Table 3).

        Macro-F1 on categorical tasks.
        """
        return self.discriminative_test_report.f1


class SnorkelPipeline:
    """Orchestrates LF application, label modeling, and end-model training."""

    def __init__(
        self,
        lfs: Optional[Sequence[LabelingFunction]] = None,
        config: Optional[PipelineConfig] = None,
        featurizer: Optional[RelationFeaturizer] = None,
        discriminative_model: Optional[NoiseAwareClassifier] = None,
    ) -> None:
        self.lfs = list(lfs) if lfs is not None else None
        self.config = config or PipelineConfig()
        self.featurizer = featurizer or RelationFeaturizer(num_features=self.config.num_features)
        self._discriminative_model = discriminative_model

    # ------------------------------------------------------------------ running
    def run(self, task: TaskDataset) -> PipelineResult:
        """Run the full pipeline on a task dataset (binary or categorical).

        With ``config.streaming=True`` the run is delegated to
        :meth:`run_streams` over ``task.stream_candidates(...)`` generators —
        the candidate lists the task happens to hold in memory are never
        handed over as lists, so the same code path serves splits backed by
        out-of-core storage.
        """
        lfs = self.lfs if self.lfs is not None else task.lfs
        if self.config.streaming:
            return self.run_streams(
                task.stream_candidates("train"),
                task.stream_candidates("test"),
                task.split_gold("test"),
                lfs=lfs,
                task_name=task.name,
            )
        if self.config.checkpoint_dir is not None:
            raise ConfigurationError(
                "checkpoint_dir requires the streaming pipeline "
                "(PipelineConfig(streaming=True)): the materialized run has "
                "no chunked intermediate blocks to persist"
            )
        timings: dict[str, float] = {}

        start = time.perf_counter()
        self.featurizer.fit()
        applier = LFApplier(
            lfs,
            chunk_size=self.config.chunk_size,
            backend=self.config.applier_backend,
            num_workers=self.config.applier_workers,
            validate=self.config.lf_validate,
            pushdown=self.config.lf_pushdown,
            transport=self.config.engine_transport,
        )
        # The candidate lists are needed later for featurization, so hand the
        # applier the lists themselves (engaging its dense scatter-on-arrival
        # path) rather than a stream; out-of-core callers use streaming=True.
        train_candidates = task.split_candidates("train")
        test_candidates = task.split_candidates("test")
        label_matrix = applier.apply(train_candidates, sparse=self.config.sparse_labels)
        test_matrix = applier.apply(test_candidates, sparse=self.config.sparse_labels)
        timings["lf_application"] = time.perf_counter() - start

        start = time.perf_counter()
        strategy, generative_model, training_probs = self._label_modeling(label_matrix)
        timings["label_modeling"] = time.perf_counter() - start

        generative_report = self._generative_report(
            task.cardinality, generative_model, test_matrix, task.split_gold("test")
        )

        start = time.perf_counter()
        discriminative_model, discriminative_report = self._discriminative_stage(
            task, train_candidates, test_candidates, training_probs, label_matrix
        )
        timings["discriminative_training"] = time.perf_counter() - start

        return PipelineResult(
            task_name=task.name,
            strategy=strategy,
            label_matrix=label_matrix,
            training_probs=training_probs,
            generative_test_report=generative_report,
            discriminative_test_report=discriminative_report,
            generative_model=generative_model,
            discriminative_model=discriminative_model,
            timings=timings,
        )

    def run_streams(
        self,
        train_candidates: Iterable[Candidate],
        test_candidates: Iterable[Candidate],
        test_gold: np.ndarray,
        lfs: Optional[Sequence[LabelingFunction]] = None,
        task_name: str = "stream",
    ) -> PipelineResult:
        """Run the pipeline end-to-end from raw candidate iterables.

        The out-of-core entry point: ``train_candidates`` / ``test_candidates``
        may be generators (each is consumed exactly once, chunk by chunk);
        only ``test_gold`` must be a materialized vector, for evaluation.
        Per split the engine makes a single fused pass — LF application and
        featurization on the same chunk — and the end model then trains from
        the accumulated CSR feature blocks without a dense ``(m, d)`` matrix
        or candidate list ever existing.  End-model probabilities are
        value-identical to the materialized pipeline on the same candidates.
        """
        config = self.config
        lfs = list(lfs) if lfs is not None else self.lfs
        if not lfs:
            raise ConfigurationError(
                "run_streams needs labeling functions (pass lfs= here or to the "
                "pipeline constructor)"
            )
        timings: dict[str, float] = {}

        start = time.perf_counter()
        self.featurizer.fit()
        store, train_ckpt, test_ckpt, epoch_ckpt = self._open_checkpoints(lfs, task_name)
        try:
            applier = LFApplier(
                lfs,
                chunk_size=config.chunk_size,
                backend=config.applier_backend,
                num_workers=config.applier_workers,
                validate=config.lf_validate,
                pushdown=config.lf_pushdown,
                transport=config.engine_transport,
                chunk_timeout=config.engine_chunk_timeout,
            )
            label_matrix, train_blocks = applier.apply_with_features(
                train_candidates,
                self.featurizer,
                sparse=config.sparse_labels,
                checkpoint=train_ckpt,
            )
            test_matrix, test_blocks = applier.apply_with_features(
                test_candidates,
                self.featurizer,
                sparse=config.sparse_labels,
                checkpoint=test_ckpt,
            )
            timings["lf_application"] = time.perf_counter() - start
            if store is not None and store.retention == "latest_epoch":
                # Reclaim chunk blocks a longer earlier run left behind.
                train_ckpt.prune_beyond(len(train_blocks))
                test_ckpt.prune_beyond(len(test_blocks))

            start = time.perf_counter()
            strategy, generative_model, training_probs = self._label_modeling_checkpointed(
                label_matrix, store
            )
            timings["label_modeling"] = time.perf_counter() - start

            cardinality = label_matrix.cardinality
            test_gold = np.asarray(test_gold)
            generative_report = self._generative_report(
                cardinality, generative_model, test_matrix, test_gold
            )

            start = time.perf_counter()
            discriminative_model, discriminative_report = self._discriminative_stage_streaming(
                cardinality,
                train_blocks,
                test_blocks,
                training_probs,
                label_matrix,
                test_gold,
                epoch_checkpoint=epoch_ckpt,
            )
            timings["discriminative_training"] = time.perf_counter() - start
        finally:
            if store is not None:
                store.close()

        return PipelineResult(
            task_name=task_name,
            strategy=strategy,
            label_matrix=label_matrix,
            training_probs=training_probs,
            generative_test_report=generative_report,
            discriminative_test_report=discriminative_report,
            generative_model=generative_model,
            discriminative_model=discriminative_model,
            timings=timings,
        )

    # ------------------------------------------------------------ checkpoints
    def _checkpoint_fingerprint(self, lfs: Sequence[LabelingFunction], task_name: str) -> dict:
        """What a stored checkpoint must have been produced under to be
        replayable: the chunk blocks depend on the LF suite, the chunking,
        and the featurizer width; the epoch checkpoints additionally on the
        seed and the end-model schedule length."""
        config = self.config
        return {
            "format": 1,
            "task": task_name,
            "lfs": [lf.name for lf in lfs],
            "chunk_size": config.chunk_size,
            "sparse_labels": config.sparse_labels,
            "num_features": self.featurizer.num_features,
            "seed": config.seed,
            "discriminative_epochs": config.discriminative_epochs,
            "online": config.online,
        }

    def _open_checkpoints(
        self, lfs: Sequence[LabelingFunction], task_name: str
    ) -> tuple[
        Optional[BlockStore],
        Optional[ChunkCheckpointer],
        Optional[ChunkCheckpointer],
        Optional[EpochCheckpoint],
    ]:
        """Open (or refuse to reuse) the run's block store.

        An existing store is resumed only when ``config.resume`` holds and
        its recorded fingerprint matches this run's configuration; anything
        else clears it — replaying blocks produced under different LFs or
        chunking would be silently wrong, never merely slow.
        """
        config = self.config
        if config.checkpoint_dir is None:
            return None, None, None, None
        store = BlockStore(config.checkpoint_dir, retention=config.checkpoint_retention)
        fingerprint = self._checkpoint_fingerprint(lfs, task_name)
        key = "meta/fingerprint"
        stale = True
        if config.resume and key in store:
            stale = store.get_pickle(key) != fingerprint
        if stale:
            store.clear()
            store.put_pickle(key, fingerprint)
        return (
            store,
            ChunkCheckpointer(store, "train"),
            ChunkCheckpointer(store, "test"),
            EpochCheckpoint(store, "end_model"),
        )

    def _label_modeling_checkpointed(
        self, label_matrix: LabelMatrix, store: Optional[BlockStore]
    ) -> tuple[Optional[ModelingStrategy], Optional[GenerativeModel], np.ndarray]:
        """The label-modeling stage, memoized in the block store.

        The stage is deterministic given Λ and the config, so a resumed run
        recomputing it would produce the identical result — the checkpoint
        only buys back its wall-clock.  A full disk degrades with a warning,
        exactly like the chunk checkpointer.
        """
        key = "phase/label_modeling"
        if store is not None and key in store:
            return store.get_pickle(key)
        outcome = self._label_modeling(label_matrix, store=store)
        if store is not None:
            try:
                store.put_pickle(key, outcome)
            except OSError as exc:
                warnings.warn(
                    f"label-modeling checkpoint skipped after write failure "
                    f"({exc}); the run continues without it",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return outcome

    # ----------------------------------------------------------------- stages
    def _label_modeling(
        self, label_matrix: LabelMatrix, store: Optional[BlockStore] = None
    ) -> tuple[Optional[ModelingStrategy], Optional[GenerativeModel], np.ndarray]:
        """Choose a strategy and produce probabilistic training labels.

        Categorical matrices flow through the same stages: the optimizer
        always selects the generative model for them (the MV-vs-GM advantage
        bound is binary theory) and the model trains its k-ary estimator,
        returning ``(m, k)`` distributions.

        With ``config.online`` the generative stage runs through the online
        incremental estimator instead (see :meth:`_label_modeling_online`).
        """
        config = self.config
        cardinality = label_matrix.cardinality
        strategy: Optional[ModelingStrategy] = None
        if config.force_strategy is not None:
            use_generative = config.force_strategy == "GM"
            correlations: list[tuple[int, int]] = []
        elif config.use_optimizer:
            optimizer = ModelingStrategyOptimizer(
                advantage_tolerance=config.advantage_tolerance,
                learn_correlations=config.learn_correlations,
            )
            strategy = optimizer.choose(label_matrix)
            use_generative = strategy.use_generative_model
            correlations = strategy.correlations
        else:
            use_generative = True
            correlations = []

        if not use_generative:
            if cardinality == 2:
                return strategy, None, MajorityVoter().predict_proba(label_matrix)
            return (
                strategy,
                None,
                MultiClassMajorityVoter(cardinality).predict_proba(label_matrix),
            )

        if config.online:
            return strategy, *self._label_modeling_online(
                label_matrix, cardinality, correlations, store
            )

        model = GenerativeModel(
            epochs=config.generative_epochs,
            step_size=config.generative_step_size,
            cardinality=cardinality,
            gibbs_kernel=config.gibbs_kernel,
            seed=config.seed,
        )
        model.fit(label_matrix, correlations=correlations)
        return strategy, model, model.predict_proba(label_matrix)

    def _label_modeling_online(
        self,
        label_matrix: LabelMatrix,
        cardinality: int,
        correlations: Sequence[tuple[int, int]],
        store: Optional[BlockStore],
    ) -> tuple[GenerativeModel, np.ndarray]:
        """The generative stage through the online incremental estimator.

        Λ's rows are folded into an :class:`OnlineGenerativeModel` in
        ``chunk_size`` slices — the same row blocks the streaming engine's
        chunk tasks produced — then the model is drained and the exact
        batch-equivalent fit serves the training posteriors.  With a block
        store attached, the model's versioned statistics are persisted
        durably (and superseded snapshots are reclaimed under the
        ``latest_epoch`` retention policy).
        """
        config = self.config
        online = OnlineGenerativeModel(
            cardinality=cardinality,
            correlations=correlations,
            epochs=config.generative_epochs,
            seed=config.seed,
        )
        num_rows = label_matrix.shape[0]
        for start in range(0, num_rows, config.chunk_size):
            stop = min(start + config.chunk_size, num_rows)
            online.update(label_matrix.select_rows(np.arange(start, stop)))
        if store is not None:
            try:
                online.save(store, prefix="online/label_model")
            except OSError as exc:
                warnings.warn(
                    f"online-model statistics checkpoint skipped after write "
                    f"failure ({exc}); the run continues without it",
                    RuntimeWarning,
                    stacklevel=2,
                )
        model = online.drain()
        return model, model.predict_proba(label_matrix)

    def _generative_report(
        self,
        cardinality: int,
        generative_model: Optional[GenerativeModel],
        test_matrix: LabelMatrix,
        test_gold: np.ndarray,
    ) -> AnyScoreReport:
        """Evaluate the label-model stage on the test split."""
        if generative_model is not None:
            test_probs = generative_model.predict_proba(test_matrix)
        elif cardinality == 2:
            test_probs = MajorityVoter().predict_proba(test_matrix)
        else:
            test_probs = MultiClassMajorityVoter(cardinality).predict_proba(test_matrix)
        return self._score_probabilities(cardinality, test_gold, test_probs)

    def _keep_rows(
        self, num_candidates: int, training_probs: np.ndarray, label_matrix: LabelMatrix
    ) -> np.ndarray:
        """Training rows the end model sees (ascending global indices)."""
        if self.config.keep_uncovered:
            return np.arange(num_candidates)
        # Drop candidates no LF covered, plus covered rows whose
        # probability is uninformative (exactly 0.5 for binary tasks,
        # exactly uniform for categorical ones — ties carry no
        # supervision signal); the paper's end models similarly train on
        # the covered set.  Coverage is taken from Λ itself — an
        # estimated class balance gives uncovered rows a non-uniform
        # prior probability, which is not supervision signal either.
        if training_probs.ndim == 2:
            uninformative = np.isclose(
                training_probs.max(axis=1), 1.0 / training_probs.shape[1]
            )
        else:
            uninformative = np.isclose(training_probs, 0.5)
        keep = np.flatnonzero(label_matrix.covered_rows() & ~uninformative)
        if keep.size == 0:
            keep = np.arange(num_candidates)
        return keep

    def _make_end_model(self, cardinality: int) -> NoiseAwareClassifier:
        """The default noise-aware end model for one task cardinality.

        By default both pipeline modes train on the deterministic
        stream-order minibatch schedule (``shuffle=False``): it is the only
        schedule a one-pass block stream can realize, and using it for the
        materialized mode too is what makes ``streaming=True``
        value-identical to the default run.
        ``PipelineConfig.end_model_shuffle`` restores the historical
        shuffled schedule (materialized mode only).
        """
        config = self.config
        if self._discriminative_model is not None:
            return self._discriminative_model
        if cardinality == 2:
            return NoiseAwareLogisticRegression(
                epochs=config.discriminative_epochs,
                class_balance=config.class_balance,
                shuffle=config.end_model_shuffle,
                seed=config.seed,
            )
        if config.class_balance is not None:
            raise ConfigurationError(
                "PipelineConfig.class_balance is a binary-end-model setting "
                "(scalar positive-class fraction) and has no effect on "
                f"cardinality-{cardinality} tasks; unset it"
            )
        return NoiseAwareSoftmaxRegression(
            num_classes=cardinality,
            epochs=config.discriminative_epochs,
            shuffle=config.end_model_shuffle,
            seed=config.seed,
        )

    def _score_probabilities(
        self, cardinality: int, test_gold: np.ndarray, probs: np.ndarray
    ) -> AnyScoreReport:
        """Score test-split probabilities with the cardinality's scorer."""
        if cardinality == 2:
            return BinaryScorer().score_probabilities(test_gold, probs)
        return MultiClassScorer(cardinality).score_probabilities(test_gold, probs)

    def _discriminative_stage(
        self,
        task: TaskDataset,
        train_candidates: Sequence[Candidate],
        test_candidates: Sequence[Candidate],
        training_probs: np.ndarray,
        label_matrix: LabelMatrix,
    ) -> tuple[NoiseAwareClassifier, AnyScoreReport]:
        """Featurize, train the end model on Ỹ, and evaluate on the test split.

        Binary tasks train the noise-aware logistic model on the ``(m,)``
        probability vector; categorical tasks train the noise-aware softmax
        model on the ``(m, k)`` distribution matrix.
        """
        config = self.config
        cardinality = task.cardinality
        # The candidate sequences were materialized once by run(); transform
        # accepts any sequence, so hand them over as-is instead of re-listing
        # them (twice, per storage branch) as earlier revisions did.
        train_features = self.featurizer.transform(
            train_candidates, sparse=config.sparse_features
        )
        test_features = self.featurizer.transform(
            test_candidates, sparse=config.sparse_features
        )
        keep = self._keep_rows(len(train_candidates), training_probs, label_matrix)
        model = self._make_end_model(cardinality)
        model.fit(train_features[keep], training_probs[keep])
        probs = model.predict_proba(test_features)
        return model, self._score_probabilities(cardinality, task.split_gold("test"), probs)

    def _discriminative_stage_streaming(
        self,
        cardinality: int,
        train_blocks: Sequence,
        test_blocks: Sequence,
        training_probs: np.ndarray,
        label_matrix: LabelMatrix,
        test_gold: np.ndarray,
        epoch_checkpoint: Optional[EpochCheckpoint] = None,
    ) -> tuple[NoiseAwareClassifier, AnyScoreReport]:
        """Train the end model from CSR feature blocks and evaluate block-wise.

        The kept training rows (covered + informative, same rule as the
        materialized stage) are carved out of each block in place, so the
        minibatch stream visits exactly the rows ``fit(X[keep], Ỹ[keep])``
        would — in the same order — and the trained model is value-identical.
        With ``epoch_checkpoint`` the fit saves its state after every epoch
        and a resumed run replays only the remaining ones.
        """
        num_candidates = training_probs.shape[0]
        keep = self._keep_rows(num_candidates, training_probs, label_matrix)
        keep_mask = np.zeros(num_candidates, dtype=bool)
        keep_mask[keep] = True

        def kept_blocks():
            start = 0
            for block in train_blocks:
                stop = start + block.shape[0]
                local = np.flatnonzero(keep_mask[start:stop])
                if local.size:
                    yield block[local], training_probs[start + local]
                start = stop

        model = self._make_end_model(cardinality)
        if epoch_checkpoint is not None:
            model.fit_stream(kept_blocks, checkpoint=epoch_checkpoint)
        else:
            model.fit_stream(kept_blocks)

        if test_blocks:
            probs = np.concatenate(
                [model.predict_proba(block) for block in test_blocks], axis=0
            )
        else:
            probs = np.zeros((0, cardinality) if cardinality > 2 else 0)
        return model, self._score_probabilities(cardinality, test_gold, probs)
