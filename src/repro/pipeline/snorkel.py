"""The end-to-end Snorkel pipeline.

``SnorkelPipeline`` wires the stages of Figure 2 together for a binary task:

1. apply the labeling functions over the training candidates → label matrix Λ,
2. run the modeling-strategy optimizer (Algorithm 1) to choose between
   unweighted majority vote and the generative model (and, for the latter,
   which correlations to include),
3. produce probabilistic training labels Ỹ,
4. train a noise-aware discriminative model on candidate *features* and Ỹ,
5. evaluate the generative and discriminative stages on the held-out test
   split.

The pipeline never touches training-split gold labels; they exist in the
task datasets purely so the benchmark harness can report oracle statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.context.candidates import Candidate
from repro.datasets.base import TaskDataset
from repro.discriminative.base import NoiseAwareClassifier
from repro.discriminative.featurizers import RelationFeaturizer
from repro.discriminative.logistic import NoiseAwareLogisticRegression
from repro.evaluation.scorer import BinaryScorer, ScoreReport
from repro.exceptions import ConfigurationError
from repro.labeling.applier import LFApplier
from repro.labeling.engine import BACKENDS
from repro.labeling.lf import LabelingFunction
from repro.labeling.matrix import LabelMatrix
from repro.labelmodel.generative import GenerativeModel
from repro.labelmodel.majority import MajorityVoter
from repro.labelmodel.optimizer import ModelingStrategy, ModelingStrategyOptimizer
from repro.types import NEGATIVE, POSITIVE


@dataclass
class PipelineConfig:
    """Configuration of one pipeline execution."""

    use_optimizer: bool = True
    force_strategy: Optional[str] = None  # "MV" or "GM" to bypass the optimizer
    learn_correlations: bool = True
    #: Store Λ sparsely (CSR of the non-abstain entries) and run the label
    #: modeling stage through the sparse hot paths.  Labels and probabilistic
    #: outputs are identical to the dense run; memory and fit time scale with
    #: the number of emitted labels instead of with m·n.
    sparse_labels: bool = False
    #: Executor backend for LF application (``"sequential"``, ``"threads"``,
    #: or ``"processes"`` — see :mod:`repro.labeling.engine`).  The label
    #: matrix is identical for every backend.
    applier_backend: str = "sequential"
    #: Worker count for the pool backends (``None`` = one per available CPU);
    #: ignored by the sequential backend.
    applier_workers: Optional[int] = 1
    #: Featurize candidates into CSR feature matrices and train the end model
    #: sparsely; feature values and trained weights match the dense run.
    sparse_features: bool = False
    advantage_tolerance: float = 0.01
    generative_epochs: int = 20
    generative_step_size: float = 0.05
    discriminative_epochs: int = 40
    num_features: int = 1024
    class_balance: Optional[float] = None
    keep_uncovered: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.force_strategy not in (None, "MV", "GM"):
            raise ConfigurationError(
                f"force_strategy must be None, 'MV' or 'GM', got {self.force_strategy!r}"
            )
        if self.applier_backend not in BACKENDS:
            raise ConfigurationError(
                f"applier_backend must be one of {BACKENDS}, got {self.applier_backend!r}"
            )
        if self.applier_workers is not None and self.applier_workers < 1:
            raise ConfigurationError(
                f"applier_workers must be >= 1 or None, got {self.applier_workers}"
            )


@dataclass
class PipelineResult:
    """Everything produced by one pipeline execution."""

    task_name: str
    strategy: Optional[ModelingStrategy]
    label_matrix: LabelMatrix
    training_probs: np.ndarray
    generative_test_report: ScoreReport
    discriminative_test_report: ScoreReport
    generative_model: Optional[GenerativeModel]
    discriminative_model: NoiseAwareClassifier
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def generative_f1(self) -> float:
        """Test F1 of the label-model stage (Snorkel Gen. column of Table 3)."""
        return self.generative_test_report.f1

    @property
    def discriminative_f1(self) -> float:
        """Test F1 of the end model (Snorkel Disc. column of Table 3)."""
        return self.discriminative_test_report.f1


class SnorkelPipeline:
    """Orchestrates LF application, label modeling, and end-model training."""

    def __init__(
        self,
        lfs: Optional[Sequence[LabelingFunction]] = None,
        config: Optional[PipelineConfig] = None,
        featurizer: Optional[RelationFeaturizer] = None,
        discriminative_model: Optional[NoiseAwareClassifier] = None,
    ) -> None:
        self.lfs = list(lfs) if lfs is not None else None
        self.config = config or PipelineConfig()
        self.featurizer = featurizer or RelationFeaturizer(num_features=self.config.num_features)
        self._discriminative_model = discriminative_model

    # ------------------------------------------------------------------ running
    def run(self, task: TaskDataset) -> PipelineResult:
        """Run the full pipeline on a binary task dataset."""
        if task.cardinality != 2:
            raise ConfigurationError(
                f"SnorkelPipeline handles binary tasks; task {task.name!r} has "
                f"cardinality {task.cardinality} (use the Dawid-Skene model directly)"
            )
        lfs = self.lfs if self.lfs is not None else task.lfs
        timings: dict[str, float] = {}

        start = time.perf_counter()
        applier = LFApplier(
            lfs,
            backend=self.config.applier_backend,
            num_workers=self.config.applier_workers,
        )
        # The candidate lists are needed later for featurization, so hand the
        # applier the lists themselves (engaging its dense scatter-on-arrival
        # path) rather than a stream; out-of-core callers should drive
        # LFApplier.apply directly with task.stream_candidates(...).
        train_candidates = task.split_candidates("train")
        test_candidates = task.split_candidates("test")
        label_matrix = applier.apply(train_candidates, sparse=self.config.sparse_labels)
        test_matrix = applier.apply(test_candidates, sparse=self.config.sparse_labels)
        timings["lf_application"] = time.perf_counter() - start

        start = time.perf_counter()
        strategy, generative_model, training_probs = self._label_modeling(label_matrix)
        timings["label_modeling"] = time.perf_counter() - start

        # Generative-stage evaluation on the test split.
        if generative_model is not None:
            test_probs = generative_model.predict_proba(test_matrix)
        else:
            test_probs = MajorityVoter().predict_proba(test_matrix)
        generative_report = BinaryScorer().score_probabilities(
            task.split_gold("test"), test_probs
        )

        start = time.perf_counter()
        discriminative_model, discriminative_report = self._discriminative_stage(
            task, train_candidates, test_candidates, training_probs, label_matrix
        )
        timings["discriminative_training"] = time.perf_counter() - start

        return PipelineResult(
            task_name=task.name,
            strategy=strategy,
            label_matrix=label_matrix,
            training_probs=training_probs,
            generative_test_report=generative_report,
            discriminative_test_report=discriminative_report,
            generative_model=generative_model,
            discriminative_model=discriminative_model,
            timings=timings,
        )

    # ----------------------------------------------------------------- stages
    def _label_modeling(
        self, label_matrix: LabelMatrix
    ) -> tuple[Optional[ModelingStrategy], Optional[GenerativeModel], np.ndarray]:
        """Choose a strategy and produce probabilistic training labels."""
        config = self.config
        strategy: Optional[ModelingStrategy] = None
        if config.force_strategy is not None:
            use_generative = config.force_strategy == "GM"
            correlations: list[tuple[int, int]] = []
        elif config.use_optimizer:
            optimizer = ModelingStrategyOptimizer(
                advantage_tolerance=config.advantage_tolerance,
                learn_correlations=config.learn_correlations,
            )
            strategy = optimizer.choose(label_matrix)
            use_generative = strategy.use_generative_model
            correlations = strategy.correlations
        else:
            use_generative = True
            correlations = []

        if not use_generative:
            return strategy, None, MajorityVoter().predict_proba(label_matrix)

        model = GenerativeModel(
            epochs=config.generative_epochs,
            step_size=config.generative_step_size,
            seed=config.seed,
        )
        model.fit(label_matrix, correlations=correlations)
        return strategy, model, model.predict_proba(label_matrix)

    def _discriminative_stage(
        self,
        task: TaskDataset,
        train_candidates: Sequence[Candidate],
        test_candidates: Sequence[Candidate],
        training_probs: np.ndarray,
        label_matrix: LabelMatrix,
    ) -> tuple[NoiseAwareClassifier, ScoreReport]:
        """Featurize, train the end model on Ỹ, and evaluate on the test split."""
        config = self.config
        if config.sparse_features:
            train_features = self.featurizer.transform(list(train_candidates), sparse=True)
            test_features = self.featurizer.transform(list(test_candidates), sparse=True)
        else:
            train_features = self.featurizer.transform(list(train_candidates))
            test_features = self.featurizer.transform(list(test_candidates))

        if config.keep_uncovered:
            keep = np.arange(len(train_candidates))
        else:
            # Drop candidates no LF covered, plus covered rows whose
            # probability is exactly 0.5 (ties carry no supervision signal);
            # the paper's end models similarly train on the covered set.
            # Coverage is taken from Λ itself — an estimated class balance
            # gives uncovered rows a non-0.5 prior probability, which is not
            # supervision signal either.
            keep = np.flatnonzero(
                label_matrix.covered_rows() & ~np.isclose(training_probs, 0.5)
            )
            if keep.size == 0:
                keep = np.arange(len(train_candidates))

        model = self._discriminative_model or NoiseAwareLogisticRegression(
            epochs=config.discriminative_epochs,
            class_balance=config.class_balance,
            seed=config.seed,
        )
        model.fit(train_features[keep], training_probs[keep])
        probs = model.predict_proba(test_features)
        report = BinaryScorer().score_probabilities(task.split_gold("test"), probs)
        return model, report
