"""Core label types and constants shared across the library.

The paper works primarily in the binary setting ``Y = {-1, +1}`` with a
distinguished *abstain* value for labeling functions that decline to vote.
Following the paper's notation we encode abstention as ``0`` inside label
matrices so that majority vote reduces to a sign of a sum.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

#: Value a labeling function returns (and that is stored in the label matrix)
#: when it declines to vote on a candidate.
ABSTAIN: int = 0

#: Positive class in the binary setting.
POSITIVE: int = 1

#: Negative class in the binary setting.
NEGATIVE: int = -1

#: The complete set of values a binary labeling function may emit.
BINARY_LABELS: tuple[int, ...] = (NEGATIVE, ABSTAIN, POSITIVE)


class Label(enum.IntEnum):
    """Symbolic names for the binary label vocabulary.

    ``Label`` members compare equal to their integer encodings, so code may
    freely mix ``Label.POSITIVE`` and ``1``.
    """

    NEGATIVE = -1
    ABSTAIN = 0
    POSITIVE = 1


def is_valid_binary_label(value: int, allow_abstain: bool = True) -> bool:
    """Return ``True`` if ``value`` is a legal binary label.

    Parameters
    ----------
    value:
        Candidate label value.
    allow_abstain:
        Whether ``ABSTAIN`` (0) counts as valid.  Ground-truth vectors must
        not contain abstentions, while label-matrix entries may.
    """
    if value == ABSTAIN:
        return allow_abstain
    return value in (NEGATIVE, POSITIVE)


def validate_label_matrix(label_matrix: np.ndarray, cardinality: int = 2) -> np.ndarray:
    """Validate and canonicalize a label matrix.

    Parameters
    ----------
    label_matrix:
        Array of shape ``(num_points, num_lfs)``.  For the binary setting the
        entries must lie in ``{-1, 0, +1}``; for multi-class (Dawid-Skene
        style models) entries lie in ``{0, 1, ..., cardinality}`` where ``0``
        is abstain.
    cardinality:
        Number of classes of the task.

    Returns
    -------
    numpy.ndarray
        The validated matrix as an ``int64`` array.

    Raises
    ------
    ValueError
        If the matrix has the wrong rank or contains out-of-vocabulary
        entries.
    """
    matrix = np.asarray(label_matrix)
    if matrix.ndim != 2:
        raise ValueError(f"label matrix must be 2-dimensional, got shape {matrix.shape}")
    matrix = matrix.astype(np.int64, copy=False)
    values = np.unique(matrix)
    if cardinality == 2:
        allowed = {NEGATIVE, ABSTAIN, POSITIVE}
    else:
        allowed = set(range(0, cardinality + 1))
    unexpected = [int(v) for v in values if int(v) not in allowed]
    if unexpected:
        raise ValueError(
            f"label matrix contains values {unexpected} outside the allowed set {sorted(allowed)}"
        )
    return matrix


def validate_ground_truth(labels: Sequence[int] | np.ndarray, cardinality: int = 2) -> np.ndarray:
    """Validate a ground-truth label vector (no abstentions allowed).

    Returns the labels as an ``int64`` numpy array.
    """
    array = np.asarray(labels).astype(np.int64, copy=False)
    if array.ndim != 1:
        raise ValueError(f"ground truth must be 1-dimensional, got shape {array.shape}")
    if cardinality == 2:
        allowed = {NEGATIVE, POSITIVE}
    else:
        allowed = set(range(1, cardinality + 1))
    values = set(int(v) for v in np.unique(array))
    unexpected = values - allowed
    if unexpected:
        raise ValueError(
            f"ground truth contains values {sorted(unexpected)} outside {sorted(allowed)}"
        )
    return array


def probs_to_labels(probs: np.ndarray, tie_value: int = NEGATIVE) -> np.ndarray:
    """Convert positive-class probabilities into hard binary labels.

    Probabilities above 0.5 become ``POSITIVE``, below 0.5 become
    ``NEGATIVE``; exact ties take ``tie_value`` (the paper counts emitted
    zero/tie labels as negatives due to class imbalance, see Appendix A.5).
    """
    probs = np.asarray(probs, dtype=float)
    labels = np.where(probs > 0.5, POSITIVE, NEGATIVE).astype(np.int64)
    labels[np.isclose(probs, 0.5)] = tie_value
    return labels


def labels_to_probs(labels: Sequence[int] | np.ndarray) -> np.ndarray:
    """Convert hard binary labels in ``{-1, +1}`` to probabilities in ``{0, 1}``."""
    array = validate_ground_truth(labels)
    return (array == POSITIVE).astype(float)
