"""Simulation of the paper's Section 4.2 user study."""

from repro.userstudy.simulate import (
    ParticipantProfile,
    UserStudyResult,
    simulate_user_study,
)

__all__ = ["ParticipantProfile", "UserStudyResult", "simulate_user_study"]
