"""Simulation of the Section 4.2 user study.

Fifteen subject-matter experts (one declined, so 14 are analyzed) attended a
two-day workshop and wrote labeling functions for the Spouses task; their
end-model F1 scores were compared against models trained on hand-labeled
datasets equivalent to seven hours of annotation time.  Humans cannot be
shipped in a repository, so this module simulates the study:

* each participant has a skill profile (education, Python / ML / text-mining
  experience, mirroring the paper's Table 8 demographics),
* a participant "writes" a number of labeling functions drawn from a pool of
  correct, noisy, and redundant variants of the Spouses LF suite — more
  skilled participants write more functions, with higher-quality keyword
  choices and fewer redundant near-duplicates,
* each participant's functions are run through the standard pipeline
  (generative model → discriminative model) to obtain their end F1,
* the comparison baseline trains the same end model on a hand-label budget of
  ~2,500 labels (7 hours at 10 seconds per label), subsampled per
  participant, exactly as the paper constructs its 15 baseline datasets.

The simulated score distribution reproduces the study's qualitative findings:
most participants match or beat their equal-time hand-labeling baseline, and
the spread of outcomes tracks participant skill.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.baselines.hand_supervision import hand_supervision_baseline
from repro.datasets.base import TaskDataset
from repro.datasets.spouses import NEGATIVE_CUES, POSITIVE_CUES
from repro.labeling.declarative import pattern_lf
from repro.labeling.lf import LabelingFunction
from repro.pipeline.snorkel import PipelineConfig, SnorkelPipeline
from repro.types import NEGATIVE, POSITIVE
from repro.utils.rng import SeedLike, ensure_rng

EDUCATION_LEVELS = ("BA/BS", "MS", "PhD")
EXPERIENCE_LEVELS = ("none", "beginner", "intermediate", "advanced")

#: Extra cue words a skilled participant might discover beyond the reference
#: suite (present in the synthetic Spouses templates), and distractor cue
#: words a struggling participant might try (absent or uninformative).
EXTRA_POSITIVE_CUES = ["anniversary", "vows", "ceremony"]
EXTRA_NEGATIVE_CUES = ["debate", "merger", "semifinal", "project", "report"]
DISTRACTOR_CUES = ["gala", "press", "news", "spring", "attended", "announced"]


@dataclass(frozen=True)
class ParticipantProfile:
    """A simulated workshop participant."""

    participant_id: int
    education: str
    python_experience: str
    ml_experience: str
    text_mining_experience: str

    @property
    def skill(self) -> float:
        """Scalar skill in [0, 1] combining the experience factors.

        Mirrors the paper's Figure 8 finding: Python skill and ML experience
        drive outcomes; text-mining experience adds little.
        """
        def level(value: str) -> float:
            return EXPERIENCE_LEVELS.index(value) / (len(EXPERIENCE_LEVELS) - 1)

        education_score = EDUCATION_LEVELS.index(self.education) / (len(EDUCATION_LEVELS) - 1)
        return float(
            0.40 * level(self.python_experience)
            + 0.35 * level(self.ml_experience)
            + 0.15 * education_score
            + 0.10 * level(self.text_mining_experience)
        )


@dataclass
class ParticipantResult:
    """One participant's simulated outcome."""

    profile: ParticipantProfile
    num_lfs: int
    snorkel_f1: float
    hand_label_f1: float

    @property
    def beat_hand_labeling(self) -> bool:
        """Whether the participant matched or exceeded the hand-label baseline."""
        return self.snorkel_f1 >= self.hand_label_f1


@dataclass
class UserStudyResult:
    """Aggregate user-study outcome (the Figure 7 distribution)."""

    participants: list[ParticipantResult] = field(default_factory=list)

    @property
    def mean_snorkel_f1(self) -> float:
        """Average Snorkel-user F1 across participants."""
        return float(np.mean([p.snorkel_f1 for p in self.participants]))

    @property
    def mean_hand_label_f1(self) -> float:
        """Average equal-time hand-labeling F1 across participants."""
        return float(np.mean([p.hand_label_f1 for p in self.participants]))

    @property
    def fraction_matching_or_beating(self) -> float:
        """Fraction of participants matching or beating their baseline."""
        return float(np.mean([p.beat_hand_labeling for p in self.participants]))

    def pooled_lfs(self) -> list[LabelingFunction]:
        """All LFs written by all participants (the Figure 5-right pool)."""
        pooled: list[LabelingFunction] = []
        for result in self.participants:
            pooled.extend(result.lfs)  # type: ignore[attr-defined]
        return pooled


def generate_participants(
    num_participants: int = 14, seed: SeedLike = 0
) -> list[ParticipantProfile]:
    """Sample participant profiles matching the paper's demographics.

    Education: 6 bachelors, 4 masters, 5 PhDs (14 analyzed after one
    declined); all can program in Python with 80% intermediate+; 40% have
    little-to-no ML experience.
    """
    rng = ensure_rng(seed)
    educations = ["BA/BS"] * 6 + ["MS"] * 4 + ["PhD"] * 5
    rng.shuffle(educations)
    profiles = []
    for index in range(num_participants):
        python = rng.choice(
            EXPERIENCE_LEVELS[1:], p=[0.2, 0.5, 0.3]
        )  # beginner/intermediate/advanced
        ml = rng.choice(EXPERIENCE_LEVELS, p=[0.25, 0.15, 0.3, 0.3])
        text_mining = rng.choice(EXPERIENCE_LEVELS, p=[0.2, 0.4, 0.3, 0.1])
        profiles.append(
            ParticipantProfile(
                participant_id=index,
                education=educations[index % len(educations)],
                python_experience=str(python),
                ml_experience=str(ml),
                text_mining_experience=str(text_mining),
            )
        )
    return profiles


def participant_lfs(
    profile: ParticipantProfile, rng: np.random.Generator
) -> list[LabelingFunction]:
    """Simulate the labeling functions one participant writes in 2.5 hours.

    Higher-skill participants write more functions, pick more informative cue
    words, and add fewer distractors; everyone writes at least a couple of
    redundant variants (the redundancy Figure 5-right relies on).
    """
    skill = profile.skill
    num_lfs = int(np.clip(round(4 + 8 * skill + rng.normal(scale=1.5)), 3, 14))
    good_pool = [(cue, POSITIVE) for cue in POSITIVE_CUES + EXTRA_POSITIVE_CUES]
    good_pool += [(cue, NEGATIVE) for cue in NEGATIVE_CUES + EXTRA_NEGATIVE_CUES]
    distractor_pool = [
        (cue, POSITIVE if rng.random() < 0.5 else NEGATIVE) for cue in DISTRACTOR_CUES
    ]

    lfs: list[LabelingFunction] = []
    seen_names: set[str] = set()
    while len(lfs) < num_lfs:
        use_good = rng.random() < (0.5 + 0.45 * skill)
        pool = good_pool if use_good else distractor_pool
        cue, label = pool[int(rng.integers(len(pool)))]
        scope = "sentence" if rng.random() < 0.7 else "between"
        name = f"lf_p{profile.participant_id}_{cue}_{scope}"
        if name in seen_names:
            # Participants often re-implement nearly the same heuristic with a
            # slightly different scope; allow one duplicate variant then stop.
            name = f"{name}_v2"
            if name in seen_names:
                continue
        seen_names.add(name)
        lfs.append(
            pattern_lf(cue, label=label, where=scope, name=name, source_type="user")
        )
    return lfs


def simulate_user_study(
    task: TaskDataset,
    num_participants: int = 14,
    hand_label_budget: int = 2500,
    seed: SeedLike = 0,
    pipeline_config: Optional[PipelineConfig] = None,
) -> UserStudyResult:
    """Run the simulated user study on the Spouses task.

    Parameters
    ----------
    task:
        The Spouses task dataset (any binary relation task works).
    num_participants:
        Number of simulated SMEs (the paper analyzes 14).
    hand_label_budget:
        Number of gold labels in each equal-time hand-labeling baseline
        (2,500 ≈ 7 hours at 10 s/label); capped at the training-set size.
    """
    rng = ensure_rng(seed)
    profiles = generate_participants(num_participants, seed=rng)
    config = pipeline_config or PipelineConfig(
        generative_epochs=10, discriminative_epochs=25, learn_correlations=False
    )
    result = UserStudyResult()
    for profile in profiles:
        lfs = participant_lfs(profile, rng)
        pipeline = SnorkelPipeline(lfs=lfs, config=config)
        pipeline_result = pipeline.run(task)
        baseline = hand_supervision_baseline(
            task,
            label_budget=min(hand_label_budget, len(task.split_candidates("train"))),
            epochs=config.discriminative_epochs,
            seed=rng,
        )
        participant_result = ParticipantResult(
            profile=profile,
            num_lfs=len(lfs),
            snorkel_f1=pipeline_result.discriminative_f1,
            hand_label_f1=baseline.f1,
        )
        # Stash the LFs for Figure 5-right style pooled structure learning.
        participant_result.lfs = lfs  # type: ignore[attr-defined]
        result.participants.append(participant_result)
    return result


def scores_by_factor(result: UserStudyResult, factor: str) -> dict[str, list[float]]:
    """Group participant F1 scores by a profile factor (the Figure 8 breakdown).

    ``factor`` is one of ``"education"``, ``"python_experience"``,
    ``"ml_experience"``, ``"text_mining_experience"``.
    """
    grouped: dict[str, list[float]] = {}
    for participant in result.participants:
        key = getattr(participant.profile, factor)
        grouped.setdefault(key, []).append(participant.snorkel_f1)
    return grouped
