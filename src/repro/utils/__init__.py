"""Small shared utilities: seeded RNG handling, math helpers, text helpers."""

from repro.utils.mathutils import (
    accuracy_to_log_odds,
    log_odds_to_accuracy,
    logit,
    sigmoid,
    softmax,
)
from repro.utils.rng import ensure_rng, spawn_rngs

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "sigmoid",
    "logit",
    "softmax",
    "log_odds_to_accuracy",
    "accuracy_to_log_odds",
]
