"""Small shared utilities: seeded RNG handling, math helpers, text helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.mathutils import sigmoid, logit, log_odds_to_accuracy, accuracy_to_log_odds, softmax

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "sigmoid",
    "logit",
    "softmax",
    "log_odds_to_accuracy",
    "accuracy_to_log_odds",
]
