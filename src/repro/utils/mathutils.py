"""Numerically careful math helpers used throughout the label model."""

from __future__ import annotations

import numpy as np


def sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    """Numerically stable logistic sigmoid ``1 / (1 + exp(-x))``."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    if out.ndim == 0:
        return float(out)
    return out


def logit(p: np.ndarray | float, eps: float = 1e-12) -> np.ndarray | float:
    """Inverse sigmoid with clipping to avoid infinities at 0 and 1."""
    p = np.clip(np.asarray(p, dtype=float), eps, 1.0 - eps)
    out = np.log(p / (1.0 - p))
    if out.ndim == 0:
        return float(out)
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    x = np.asarray(x, dtype=float)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_odds_to_accuracy(w: np.ndarray | float) -> np.ndarray | float:
    """Convert an accuracy-factor weight to the implied LF accuracy.

    In the independent generative model the accuracy weight ``w_j`` for
    labeling function ``j`` is half the log-odds of its (non-abstaining)
    accuracy (paper Appendix A.1):

        alpha_j = exp(w_j) / (exp(w_j) + exp(-w_j)) = sigmoid(2 w_j)
    """
    return sigmoid(2.0 * np.asarray(w, dtype=float)) if np.ndim(w) else float(sigmoid(2.0 * w))


def accuracy_to_log_odds(alpha: np.ndarray | float, eps: float = 1e-12) -> np.ndarray | float:
    """Inverse of :func:`log_odds_to_accuracy`: ``w = 0.5 * log(alpha / (1 - alpha))``."""
    alpha = np.clip(np.asarray(alpha, dtype=float), eps, 1.0 - eps)
    out = 0.5 * np.log(alpha / (1.0 - alpha))
    if out.ndim == 0:
        return float(out)
    return out


def log_sum_exp(values: np.ndarray, axis: int | None = None) -> np.ndarray | float:
    """Stable ``log(sum(exp(values)))``."""
    values = np.asarray(values, dtype=float)
    maximum = np.max(values, axis=axis, keepdims=True)
    out = np.log(np.sum(np.exp(values - maximum), axis=axis, keepdims=True)) + maximum
    if axis is None:
        return float(out)
    return np.squeeze(out, axis=axis)


def clip_probabilities(probs: np.ndarray, eps: float = 1e-9) -> np.ndarray:
    """Clip probabilities away from exactly 0 and 1 for safe log-loss use."""
    return np.clip(np.asarray(probs, dtype=float), eps, 1.0 - eps)
