"""Random-number-generator plumbing.

All stochastic components in the library accept a ``seed`` argument that can
be ``None``, an integer, or an existing :class:`numpy.random.Generator`.  The
helpers here normalize that into a ``Generator`` so experiments are exactly
reproducible while still composing cleanly (child components get independent
streams via :func:`spawn_rngs`).
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged, so callers can thread
    a single stream through a pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning so that child streams do
    not overlap even when ``count`` is large.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a new seed sequence from the generator's bit stream.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]
