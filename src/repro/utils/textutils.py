"""Minimal text processing helpers (tokenization, n-grams, normalization).

The paper pre-processes text with CoreNLP / SpaCy.  The synthetic corpora in
this reproduction are generated from word-level templates, so a simple
whitespace/punctuation tokenizer and regex sentence splitter are a faithful
substitute for the code paths that matter (span offsets, word windows,
n-gram features).
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Sequence

_TOKEN_PATTERN = re.compile(r"[A-Za-z0-9_']+|[^\sA-Za-z0-9_']")
_SENTENCE_BOUNDARY = re.compile(r"(?<=[.!?])\s+")


def tokenize(text: str) -> list[str]:
    """Split ``text`` into word and punctuation tokens."""
    return _TOKEN_PATTERN.findall(text)


def tokenize_with_offsets(text: str) -> list[tuple[str, int, int]]:
    """Tokenize and return ``(token, char_start, char_end)`` triples."""
    return [(m.group(0), m.start(), m.end()) for m in _TOKEN_PATTERN.finditer(text)]


def split_sentences(text: str) -> list[str]:
    """Split ``text`` into sentences on terminal punctuation."""
    parts = [part.strip() for part in _SENTENCE_BOUNDARY.split(text)]
    return [part for part in parts if part]


def normalize(token: str) -> str:
    """Lowercase a token; the poor man's lemmatizer used by several LFs."""
    return token.lower()


def ngrams(tokens: Sequence[str], n: int) -> Iterator[tuple[str, ...]]:
    """Yield contiguous ``n``-grams of ``tokens``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    for i in range(len(tokens) - n + 1):
        yield tuple(tokens[i : i + n])


def window(tokens: Sequence[str], start: int, end: int, size: int) -> tuple[list[str], list[str]]:
    """Return the ``size`` tokens before ``start`` and after ``end`` (exclusive)."""
    left = list(tokens[max(0, start - size) : start])
    right = list(tokens[end : end + size])
    return left, right


def contains_any(tokens: Iterable[str], vocabulary: Iterable[str]) -> bool:
    """Case-insensitive membership test of any ``vocabulary`` word in ``tokens``."""
    vocab = {normalize(word) for word in vocabulary}
    return any(normalize(token) in vocab for token in tokens)
