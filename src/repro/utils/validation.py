"""Input validation helpers shared by public APIs."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


def require_positive(name: str, value: float) -> float:
    """Raise :class:`ConfigurationError` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Raise :class:`ConfigurationError` unless ``value`` >= 0."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def require_probability(name: str, value: float) -> float:
    """Raise :class:`ConfigurationError` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def require_in(name: str, value: Any, options: Sequence[Any]) -> Any:
    """Raise :class:`ConfigurationError` unless ``value`` is one of ``options``."""
    if value not in options:
        raise ConfigurationError(f"{name} must be one of {list(options)!r}, got {value!r}")
    return value


def require_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Raise :class:`ConfigurationError` unless the two sequences have equal length."""
    if len(a) != len(b):
        raise ConfigurationError(
            f"{name_a} and {name_b} must have the same length, got {len(a)} and {len(b)}"
        )


def as_float_array(
    name: str, values: Sequence[float] | np.ndarray, ndim: int | None = None
) -> np.ndarray:
    """Convert to a float array, optionally checking dimensionality."""
    array = np.asarray(values, dtype=float)
    if ndim is not None and array.ndim != ndim:
        raise ConfigurationError(f"{name} must be {ndim}-dimensional, got shape {array.shape}")
    return array
