"""The LF static-analysis subsystem: lints, contracts, pushdown, cross-checks.

Four layers are covered:

* **Library coverage** — ``analyze_lf`` classifies every LF the library
  ships (the ``lf_library`` representative suite and the synthetic vote
  suites): no ERROR diagnostics, and every declarative LF is
  pushdown-COMPILABLE with the expected shape.
* **Planted violations** — one module-level LF per diagnostic class
  (``LF101``–``LF501``), each asserted to produce exactly its code; plus the
  processes-backend divergence proof: the ``LF301`` LF really does produce
  different label matrices across applies and loses its state across the
  fork boundary.
* **Engine contracts** — the built-in chunk tasks pass ``check_task``;
  planted impure tasks are caught statically (``EN001``/``EN002``/``EN003``)
  and dynamically (:class:`PurityCheckedTask`).
* **Fuzzing** — hypothesis-generated small LF bodies: the analyzer never
  crashes, and planted hazards are never missed (no false negatives).
"""

import ast
import multiprocessing
import os
import random
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CODES,
    PurityCheckedTask,
    Severity,
    analyze_lf,
    analyze_suite,
    check_engine_tasks,
    check_task,
    classify_pushdown,
    crosscheck,
    observe_lf,
    observe_task_purity,
)
from repro.analysis.lint import lint_function
from repro.analysis.source import SourceInfo, extract_source
from repro.datasets.lf_library import LINT_LFS
from repro.datasets.synthetic import (
    stream_synthetic_candidates,
    synthetic_vote_lfs,
    text_vote_lfs,
)
from repro.exceptions import ConfigurationError, LabelingError
from repro.labeling import LabelingFunction, LFApplier, labeling_function
from repro.pipeline.snorkel import PipelineConfig
from repro.types import ABSTAIN, NEGATIVE, POSITIVE

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


# --------------------------------------------------------------------------
# Planted-violation LFs (module level so inspect.getsource works).
# --------------------------------------------------------------------------
@labeling_function()
def lf_out_of_range(x):
    return 7 if x else ABSTAIN


@labeling_function()
def lf_never_abstains(x):
    return POSITIVE if x else NEGATIVE


@labeling_function()
def lf_always_abstains(x):
    return ABSTAIN


@labeling_function()
def lf_unseeded_random(x):
    return POSITIVE if random.random() > 0.5 else ABSTAIN


@labeling_function()
def lf_clock(x):
    return POSITIVE if time.time() % 2 > 1 else ABSTAIN


@labeling_function()
def lf_entropy(x):
    return POSITIVE if os.urandom(1)[0] > 127 else ABSTAIN


@labeling_function()
def lf_hash_dependent(x):
    return POSITIVE if hash(x) % 2 else ABSTAIN


_DIVERGENCE_COUNTER = {"calls": 0}


@labeling_function()
def lf_stateful(x):
    """LF301: module-state mutation — the divergence-proof LF."""
    _DIVERGENCE_COUNTER["calls"] += 1
    return POSITIVE if _DIVERGENCE_COUNTER["calls"] % 2 else ABSTAIN


def _make_closure_mutator():
    seen = []

    @labeling_function(name="lf_closure_mutator")
    def lf(x):
        seen.append(x)
        return POSITIVE if len(seen) % 2 else ABSTAIN

    return lf


@labeling_function()
def lf_mutates_candidate(x):
    x.visited = True
    return ABSTAIN


class _StatefulVoter:
    def __init__(self):
        self.calls = 0

    def __call__(self, x):
        self.calls += 1
        return POSITIVE if self.calls % 2 else ABSTAIN


@labeling_function()
def lf_reads_file(x):
    with open("/dev/null") as handle:
        handle.read()
    return ABSTAIN


@labeling_function()
def lf_shape_but_stateful(x):
    """Threshold shape the pushdown matches — but an LF301 hazard remains."""
    _DIVERGENCE_COUNTER["calls"] = _DIVERGENCE_COUNTER["calls"] + 1
    return POSITIVE if x.field > 3 else ABSTAIN


EXPECTED_VIOLATIONS = [
    (lf_out_of_range, "LF101"),
    (lf_never_abstains, "LF102"),
    (lf_always_abstains, "LF103"),
    (lf_unseeded_random, "LF201"),
    (lf_clock, "LF202"),
    (lf_entropy, "LF203"),
    (lf_hash_dependent, "LF204"),
    (lf_stateful, "LF301"),
    (lf_mutates_candidate, "LF303"),
    (lf_reads_file, "LF401"),
]


# --------------------------------------------------------------------------
# Planted impure chunk tasks (module level for inspect.getsource).
# --------------------------------------------------------------------------
def _task_pure(payload, fault_tolerant, index, start_row, candidates):
    return [payload[0](candidate) for candidate in candidates]


def _task_mutates_payload(payload, fault_tolerant, index, start_row, candidates):
    payload.cache = index
    return []


def _task_writes_featurizer(lfs_and_featurizer, fault_tolerant, index, start_row, candidates):
    lfs_and_featurizer.vocab["new"] = index
    return []


_TASK_STATS = {"chunks": 0}


def _task_global_store(payload, fault_tolerant, index, start_row, candidates):
    _TASK_STATS["chunks"] += 1
    return []


def _task_appends_to_payload(payload, fault_tolerant, index, start_row, candidates):
    payload.append(len(candidates))
    return len(payload)


# ==========================================================================
# Library coverage: every shipped LF classifies cleanly.
# ==========================================================================
class TestLibraryCoverage:
    def test_every_library_lf_is_clean_and_compilable(self):
        report = analyze_suite(LINT_LFS())
        assert len(report) == 11
        assert not report.has_errors
        for result in report:
            # Declarative closures are unpicklable (LF501 is an expected
            # WARNING — the processes backend relies on fork inheritance);
            # nothing else may be flagged.
            assert result.codes() <= {"LF501"}, result.lf_name
            assert result.pushdown.compilable, result.lf_name

    def test_library_pushdown_shapes(self):
        report = analyze_suite(LINT_LFS())
        shape_of = {r.lf_name: r.pushdown.shape for r in report}
        # Pattern LFs compile to membership tests, regex LFs to regex_match,
        # distant supervision to KB membership, structure heuristics to
        # threshold/equality comparisons — the shapes a relational pushdown
        # would compile to LIKE / IN / comparison predicates.
        assert shape_of["lf_pos_causes"] == "membership"
        assert shape_of["lf_stem_caus"] == "regex_match"
        assert shape_of["lf_lint_kb_known_pairs"] == "membership"
        assert shape_of["lf_far_apart"] == "threshold_compare"
        assert shape_of["lf_adjacent_arguments"] == "field_equality"

    def test_synthetic_vote_lfs_fully_clean(self):
        report = analyze_suite(synthetic_vote_lfs(4) + text_vote_lfs(3))
        for result in report:
            assert result.clean, result.lf_name
            assert result.picklable is True
            assert result.pushdown.compilable
        shapes = {r.pushdown.shape for r in report}
        assert shapes == {"field_projection", "field_equality"}

    def test_diagnostic_codes_are_registered(self):
        for lf, code in EXPECTED_VIOLATIONS:
            assert code in CODES

    def test_library_crosscheck_agrees(self):
        candidates = list(
            stream_synthetic_candidates(num_points=40, num_lfs=4, propensity=0.5, seed=0)
        )
        for lf in synthetic_vote_lfs(4):
            static = analyze_lf(lf)
            observed = observe_lf(lf, candidates)
            assert observed.deterministic
            assert not observed.mutated_state
            assert crosscheck(static, observed) == []


# ==========================================================================
# Planted violations: every diagnostic class fires on its exemplar.
# ==========================================================================
class TestPlantedViolations:
    @pytest.mark.parametrize(
        "lf, code", EXPECTED_VIOLATIONS, ids=[code for _, code in EXPECTED_VIOLATIONS]
    )
    def test_violation_is_caught(self, lf, code):
        result = analyze_lf(lf)
        assert code in result.codes(), result.diagnostics

    def test_closure_mutation_caught(self):
        result = analyze_lf(_make_closure_mutator())
        assert "LF302" in result.codes()

    def test_instance_state_mutation_caught(self):
        lf = LabelingFunction("lf_instance_state", _StatefulVoter())
        result = analyze_lf(lf)
        assert "LF304" in result.codes()

    def test_unpicklable_lf_flagged_as_warning_only(self):
        weight = 1

        def unpicklable(x):
            return POSITIVE if x > weight else ABSTAIN

        result = analyze_lf(LabelingFunction("lf_local_closure", unpicklable))
        assert result.picklable is False
        flagged = [d for d in result.diagnostics if d.code == "LF501"]
        assert flagged and all(d.severity == Severity.WARNING for d in flagged)

    def test_hazardous_lf_is_never_compilable(self):
        # The predicate shape alone would compile, but the LF301 hazard
        # disqualifies it: compilable implies replayable.
        result = analyze_lf(lf_shape_but_stateful)
        assert "LF301" in result.codes()
        assert not result.pushdown.compilable
        assert "hazards remain" in result.pushdown.detail

    def test_out_of_range_respects_declared_cardinality(self):
        @labeling_function(cardinality=8)
        def lf_high_card(x):
            return 7 if x else ABSTAIN

        assert "LF101" not in analyze_lf(lf_high_card).codes()
        assert "LF101" in analyze_lf(lf_high_card, cardinality=3).codes()

    def test_source_unavailable_degrades_to_lf001(self):
        namespace = {}
        exec("def lf(x):\n    return 1\n", namespace)
        result = analyze_lf(
            LabelingFunction("lf_no_source", namespace["lf"]), probe_pickle=False
        )
        assert result.codes() == {"LF001"}
        assert not result.source_available


# ==========================================================================
# The divergence proof: the LF301 exemplar really does diverge at runtime,
# and the processes backend really does lose its state.
# ==========================================================================
class TestProcessDivergence:
    def setup_method(self):
        _DIVERGENCE_COUNTER["calls"] = 0

    def teardown_method(self):
        _DIVERGENCE_COUNTER["calls"] = 0

    def test_static_verdict_is_error(self):
        result = analyze_lf(lf_stateful)
        assert "LF301" in result.codes()
        assert result.max_severity() == Severity.ERROR

    def test_sequential_applies_diverge(self):
        # The static LF301 claim made real: the second apply continues the
        # counter where the first left off, so the same candidates get a
        # different label matrix — Λ is no longer a function of the data.
        candidates = list(range(5))
        applier = LFApplier([lf_stateful])
        first = applier.apply(candidates).to_dense()
        second = applier.apply(candidates).to_dense()
        assert not np.array_equal(first, second)
        assert _DIVERGENCE_COUNTER["calls"] == 10

    @pytest.mark.skipif(not HAS_FORK, reason="processes divergence proof needs fork")
    def test_processes_backend_loses_state(self):
        # Under the processes backend each worker mutates its own forked
        # copy: the parent's counter never advances, while the sequential
        # backend advances it once per candidate.  The observable state of
        # the program after apply() depends on the backend — exactly the
        # divergence LF301 predicts.
        candidates = list(range(6))
        LFApplier([lf_stateful], backend="sequential").apply(candidates)
        assert _DIVERGENCE_COUNTER["calls"] == 6
        _DIVERGENCE_COUNTER["calls"] = 0
        LFApplier(
            [lf_stateful], backend="processes", num_workers=2, chunk_size=2
        ).apply(candidates)
        assert _DIVERGENCE_COUNTER["calls"] == 0

    def test_validate_error_refuses_the_divergent_suite(self):
        applier = LFApplier([lf_stateful], validate="error")
        with pytest.raises(LabelingError, match="LF301"):
            applier.apply(list(range(3)))

    def test_crosscheck_confirms_static_mutation_verdict(self):
        static = analyze_lf(lf_stateful)
        observed = observe_lf(lf_stateful, list(range(4)))
        assert observed.mutated_state
        # Static flagged LF301 and the fingerprint moved: full agreement.
        assert crosscheck(static, observed) == []

    def test_crosscheck_catches_what_static_cannot_see(self):
        # An exec'd LF has no retrievable source: static analysis degrades
        # to LF001 and stays silent on nondeterminism — the dynamic layer
        # must report the disagreement.
        namespace = {"random": random}
        exec(
            "def lf(x):\n    return 1 if random.random() > 0.5 else 0\n",
            namespace,
        )
        lf = LabelingFunction("lf_hidden_random", namespace["lf"])
        static = analyze_lf(lf, probe_pickle=False)
        assert static.codes() == {"LF001"}
        observed = observe_lf(lf, list(range(50)), repeats=4)
        assert not observed.deterministic
        disagreements = crosscheck(static, observed)
        assert disagreements and "nondeterministic" in disagreements[0]


# ==========================================================================
# Engine chunk-task contracts: static EN0xx checks + the runtime shim.
# ==========================================================================
class TestEngineContracts:
    def test_builtin_engine_tasks_are_pure(self):
        report = check_engine_tasks()
        # apply / featurize / fused + the worker pool's dispatch kernel.
        assert len(report) == 4
        assert {result.lf_name for result in report} == {
            "apply_chunk",
            "featurize_chunk",
            "label_and_featurize_chunk",
            "run_attached_chunk",
        }
        for result in report:
            assert result.clean, (result.lf_name, result.diagnostics)
            assert not result.pushdown.compilable  # tasks are never pushdown

    def test_pure_task_passes(self):
        assert check_task(_task_pure).clean

    def test_payload_mutation_caught(self):
        assert "EN001" in check_task(_task_mutates_payload).codes()
        assert "EN001" in check_task(_task_appends_to_payload).codes()

    def test_featurizer_write_caught(self):
        assert "EN002" in check_task(_task_writes_featurizer).codes()

    def test_global_store_caught(self):
        assert "EN003" in check_task(_task_global_store).codes()

    def test_contract_severity_is_error(self):
        for task in (_task_mutates_payload, _task_writes_featurizer, _task_global_store):
            assert check_task(task).max_severity() == Severity.ERROR

    def test_runtime_shim_agrees_with_static(self):
        chunks = [[1, 2], [3]]
        assert observe_task_purity(_task_pure, [lambda x: x], chunks)
        assert not observe_task_purity(_task_appends_to_payload, [], chunks)

    def test_runtime_shim_raises_on_first_mutation(self):
        shim = PurityCheckedTask(_task_appends_to_payload)
        with pytest.raises(LabelingError, match="mutated its payload on chunk 0"):
            shim([], False, 0, 0, [1, 2, 3])

    def test_builtin_apply_chunk_is_dynamically_pure(self):
        from repro.labeling.engine.accumulator import apply_chunk

        lfs = synthetic_vote_lfs(3)
        candidates = list(
            stream_synthetic_candidates(num_points=20, num_lfs=3, propensity=0.5, seed=1)
        )
        assert observe_task_purity(apply_chunk, lfs, [candidates[:10], candidates[10:]])


# ==========================================================================
# Apply-time wiring: validate=, the attached report, and error details.
# ==========================================================================
class TestApplyWiring:
    def test_invalid_validate_mode_rejected(self):
        with pytest.raises(LabelingError, match="validate"):
            LFApplier(synthetic_vote_lfs(1), validate="loud")

    def test_pipeline_config_rejects_bad_mode(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(lf_validate="loud")
        assert PipelineConfig(lf_validate="warn").lf_validate == "warn"

    def test_validate_off_attaches_nothing(self):
        applier = LFApplier(synthetic_vote_lfs(2))
        applier.apply(
            list(stream_synthetic_candidates(num_points=8, num_lfs=2, seed=0))
        )
        assert applier.last_report.analysis is None

    def test_validate_warn_attaches_report_and_runs(self):
        lfs = synthetic_vote_lfs(2)
        candidates = list(stream_synthetic_candidates(num_points=8, num_lfs=2, seed=0))
        applier = LFApplier(lfs, validate="warn")
        matrix = applier.apply(candidates)
        assert matrix.shape == (8, 2)
        analysis = applier.last_report.analysis
        assert analysis is not None and len(analysis) == 2
        assert not analysis.has_errors
        assert analysis.compilable_count == 2

    def test_validate_warn_does_not_block_warnings(self):
        # lf_clock carries only a WARNING (LF202): warn mode annotates, error
        # mode blocks nothing either — only ERROR severity blocks.
        applier = LFApplier([lf_clock], validate="error")
        applier.apply(list(range(3)))
        assert applier.last_report.analysis.warnings

    def test_error_details_record_exception_breakdown(self):
        @labeling_function(name="lf_explodes")
        def lf_explodes(x):
            if x % 2:
                raise KeyError(x)
            return POSITIVE

        applier = LFApplier([lf_explodes], fault_tolerant=True, chunk_size=2)
        applier.apply(list(range(6)))
        report = applier.last_report
        assert report.errors == {"lf_explodes": 3}
        detail = report.error_details["lf_explodes"]
        assert detail.count == 3
        assert detail.type_counts == {"KeyError": 3}
        assert "KeyError" in detail.first_traceback


# ==========================================================================
# Hypothesis fuzzing: the analyzer over generated small LF bodies.
# ==========================================================================
_FUZZ_HAZARDS = {
    "LF201": "_ = random.random()",
    "LF202": "_ = time.time()",
    "LF203": "_ = os.urandom(4)",
    "LF204": "_ = hash(x)",
    "LF301": "_FUZZ_STATE['calls'] = 1",
    "LF401": "_ = open('/dev/null')",
}

_FUZZ_RETURNS = ["-1", "0", "1", "None", "True", "False", "2", "7", "x", "x.field"]

_FILLERS = [
    "pass",
    "y = 3",
    "y = x",
    "for _i in range(2):\n        pass",
    "while False:\n        break",
    "try:\n        y = 1\n    except Exception:\n        pass",
    "z = [k for k in range(3)]",
    "def inner():\n        return 99",
]


def _build_lf_source(hazard_codes, returns, fillers):
    lines = ["def lf(x):"]
    for code in hazard_codes:
        lines.append(f"    {_FUZZ_HAZARDS[code]}")
    for filler in fillers:
        lines.append(f"    {filler}")
    if len(returns) > 1:
        lines.append(f"    if x:\n        return {returns[0]}")
        for value in returns[1:-1]:
            lines.append(f"    if not x:\n        return {value}")
        lines.append(f"    return {returns[-1]}")
    else:
        lines.append(f"    return {returns[0]}")
    return "\n".join(lines) + "\n"


def _info_from_source(source):
    namespace = {"random": random, "time": time, "os": os, "_FUZZ_STATE": {}}
    exec(compile(source, "<fuzz>", "exec"), namespace)
    module = ast.parse(source)
    tree = next(
        node for node in ast.walk(module) if isinstance(node, ast.FunctionDef)
    )
    return SourceInfo(
        function=namespace["lf"], tree=tree, source=source, globals=namespace
    )


@st.composite
def lf_sources(draw):
    hazards = draw(
        st.lists(st.sampled_from(sorted(_FUZZ_HAZARDS)), max_size=3, unique=True)
    )
    returns = draw(st.lists(st.sampled_from(_FUZZ_RETURNS), min_size=1, max_size=4))
    fillers = draw(st.lists(st.sampled_from(_FILLERS), max_size=3))
    return _build_lf_source(hazards, returns, fillers), hazards, returns


class TestFuzzing:
    @settings(max_examples=120, deadline=None)
    @given(lf_sources())
    def test_analyzer_never_crashes_and_codes_are_registered(self, case):
        source, _hazards, _returns = case
        info = _info_from_source(source)
        diagnostics, inferred = lint_function(info, "lf", cardinality=2)
        for diagnostic in diagnostics:
            assert diagnostic.code in CODES
        assert inferred is None or isinstance(inferred, frozenset)
        verdict = classify_pushdown(info)
        assert verdict.status in ("COMPILABLE", "OPAQUE")

    @settings(max_examples=120, deadline=None)
    @given(lf_sources())
    def test_no_false_negatives_on_planted_hazards(self, case):
        source, hazards, returns = case
        info = _info_from_source(source)
        diagnostics, _ = lint_function(info, "lf", cardinality=2)
        codes = {d.code for d in diagnostics}
        for planted in hazards:
            assert planted in codes, f"missed {planted} in:\n{source}"
        # Every return path made of resolvable constants: a constant outside
        # the cardinality-2 range {-1, 0, 1} must raise LF101.
        resolvable = {"-1": -1, "0": 0, "1": 1, "None": 0, "True": 1, "False": -1,
                      "2": 2, "7": 7}
        planted_bad = [
            value for value in returns
            if value in resolvable and resolvable[value] not in (-1, 0, 1)
        ]
        if planted_bad:
            assert "LF101" in codes, f"missed LF101 in:\n{source}"

    @settings(max_examples=60, deadline=None)
    @given(lf_sources())
    def test_extract_source_roundtrip_on_real_functions(self, case):
        # The same generated bodies written through extract_source's normal
        # path (via analyze_lf on the live function) never crash either, even
        # though exec'd functions have no retrievable source.
        source, _hazards, _returns = case
        namespace = {"random": random, "time": time, "os": os, "_FUZZ_STATE": {}}
        exec(compile(source, "<fuzz>", "exec"), namespace)
        result = analyze_lf(namespace["lf"], probe_pickle=False)
        assert result.codes() == {"LF001"}


class TestSourceExtraction:
    def test_lambda_lf_analyzable(self):
        lf = LabelingFunction("lf_lambda", lambda x: POSITIVE if x else ABSTAIN)
        result = analyze_lf(lf)
        assert result.source_available
        assert result.inferred_labels == frozenset({1, 0})

    def test_extract_source_unwraps_wrappers(self):
        import functools

        def base(threshold, x):
            return POSITIVE if x > threshold else ABSTAIN

        info = extract_source(functools.partial(base, 3))
        assert info.tree is not None
        assert info.parameters == ["threshold", "x"]
