"""The crash-safe block store: durability, recovery, and the checkpointers.

What this suite pins down:

* **Round trips** — named arrays (any dtype, including empty) and pickled
  objects come back value-identical, as read-only memmap views.
* **Recovery** — opening a store drops a torn index tail, detects
  corrupted block files by size/crc and deletes them, and sweeps orphaned
  and temp files; what survives recovery is exactly what was durably
  committed.
* **Reclamation** — ``delete`` tombstones durably, ``prune`` clears a
  namespace, ``retention="latest_epoch"`` drops superseded epoch-stamped
  blocks (at put time and at open), and the index compacts inline under
  same-key churn instead of growing without bound.
* **Checkpointers** — ``ChunkCheckpointer`` records and reloads
  :class:`ChunkResult` blocks (fused feature block included) losslessly and
  degrades with one warning on a full disk; ``EpochCheckpoint`` snapshots
  end-model training state the same way.
* **StoredFeatureBlocks** — refuses incomplete stores, serves RAM
  overrides for chunks a degraded run never persisted.
"""

import os

import numpy as np
import pytest

from repro.exceptions import LabelingError
from repro.labeling.blockstore import (
    BlockStore,
    ChunkCheckpointer,
    EpochCheckpoint,
    StoredFeatureBlocks,
)
from repro.labeling.engine import faults
from repro.labeling.engine.accumulator import ChunkResult


def make_result(index, num_candidates=10, with_features=True):
    rng = np.random.default_rng(index)
    nnz = 1 + index
    result = ChunkResult(
        index=index,
        start_row=index * num_candidates,
        num_candidates=num_candidates,
        row_offsets=rng.integers(0, num_candidates, nnz),
        cols=rng.integers(0, 4, nnz),
        values=rng.integers(-1, 2, nnz),
        errors={"lf_a": index},
        seconds=0.5,
    )
    if with_features:
        result.features = ChunkResult(
            index=index,
            start_row=index * num_candidates,
            num_candidates=num_candidates,
            row_offsets=rng.integers(0, num_candidates, 2 * nnz),
            cols=rng.integers(0, 16, 2 * nnz),
            values=rng.random(2 * nnz),
        )
    return result


# -------------------------------------------------------------- round trips
def test_put_get_round_trip(tmp_path):
    with BlockStore(str(tmp_path / "store")) as store:
        arrays = {
            "ints": np.arange(7, dtype=np.int64),
            "floats": np.linspace(0, 1, 5),
            "empty": np.empty(0, dtype=np.int32),
            "matrix": np.arange(6, dtype=np.float32).reshape(2, 3),
        }
        store.put("block/one", arrays, {"note": "hello"})
        loaded, meta = store.get("block/one")
        assert meta == {"note": "hello"}
        for name, array in arrays.items():
            assert np.array_equal(loaded[name], array)
            assert loaded[name].dtype == array.dtype
        assert "block/one" in store
        assert "block/two" not in store
        with pytest.raises(LabelingError):
            store.get("block/two")


def test_reput_last_wins_across_reopen(tmp_path):
    root = str(tmp_path / "store")
    with BlockStore(root) as store:
        store.put("k", {"a": np.array([1])})
        store.put("k", {"a": np.array([2, 3])})
    with BlockStore(root) as store:
        arrays, _ = store.get("k")
        assert np.array_equal(arrays["a"], [2, 3])
        assert store.keys() == ["k"]


def test_pickle_round_trip(tmp_path):
    with BlockStore(str(tmp_path / "store")) as store:
        payload = {"weights": np.arange(4.0), "epoch": 3}
        store.put_pickle("phase/thing", payload)
        loaded = store.get_pickle("phase/thing")
        assert loaded["epoch"] == 3
        assert np.array_equal(loaded["weights"], payload["weights"])


def test_bad_key_rejected(tmp_path):
    with BlockStore(str(tmp_path / "store")) as store:
        with pytest.raises(LabelingError):
            store.put("bad key!", {"a": np.zeros(1)})


# ----------------------------------------------------------------- recovery
def test_torn_index_tail_dropped(tmp_path):
    root = str(tmp_path / "store")
    with BlockStore(root) as store:
        store.put("good", {"a": np.arange(3)})
        index_path = store.index_path
    with open(index_path, "a", encoding="utf-8") as handle:
        handle.write('{"key": "torn", "fi')  # crash mid-append
    with BlockStore(root) as store:
        assert store.keys() == ["good"]
        arrays, _ = store.get("good")
        assert np.array_equal(arrays["a"], [0, 1, 2])
    # The compacted index parses cleanly end to end.
    with open(index_path, encoding="utf-8") as handle:
        assert all(line.strip().startswith("{") for line in handle)


def test_corrupt_block_file_detected_and_deleted(tmp_path):
    root = str(tmp_path / "store")
    with BlockStore(root) as store:
        store.put("victim", {"a": np.arange(100)})
        store.put("survivor", {"a": np.arange(5)})
        path = os.path.join(store.blocks_dir, "victim.blk")
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.seek(size // 2)
        byte = handle.read(1)
        handle.seek(size // 2)
        handle.write(bytes([byte[0] ^ 0xFF]))
    with BlockStore(root) as store:
        assert store.keys() == ["survivor"]
        assert not os.path.exists(path)


def test_orphan_and_tmp_files_swept(tmp_path):
    root = str(tmp_path / "store")
    with BlockStore(root) as store:
        store.put("real", {"a": np.arange(3)})
        blocks_dir = store.blocks_dir
    orphan = os.path.join(blocks_dir, "orphan.blk")
    leftover = os.path.join(blocks_dir, "real.blk.12345.tmp")
    open(orphan, "wb").close()
    open(leftover, "wb").close()
    with BlockStore(root) as store:
        assert store.keys() == ["real"]
    assert not os.path.exists(orphan)
    assert not os.path.exists(leftover)


def test_clear_empties_store(tmp_path):
    root = str(tmp_path / "store")
    with BlockStore(root) as store:
        store.put("a", {"x": np.arange(3)})
        store.put("b", {"x": np.arange(4)})
        store.clear()
        assert store.keys() == []
        assert os.listdir(store.blocks_dir) == []
    with BlockStore(root) as store:
        assert store.keys() == []


def test_put_after_clear_is_durable(tmp_path):
    """clear() atomically rewrites the index file; appends made through the
    store's long-lived handle afterwards must land in the *new* inode, or
    every block written after a clear silently vanishes on reopen."""
    root = str(tmp_path / "store")
    with BlockStore(root) as store:
        store.put("old", {"x": np.arange(2)})
        store.clear()
        store.put("fresh", {"x": np.arange(5)})
    with BlockStore(root) as store:
        assert store.keys() == ["fresh"]
        arrays, _ = store.get("fresh")
        assert np.array_equal(arrays["x"], np.arange(5))


# ------------------------------------------------------ deletion & retention
def test_delete_removes_block_and_survives_reopen(tmp_path):
    root = str(tmp_path / "store")
    with BlockStore(root) as store:
        store.put("dead", {"a": np.arange(3)})
        store.put("alive", {"a": np.arange(4)})
        path = os.path.join(store.blocks_dir, "dead.blk")
        assert store.delete("dead")
        assert not store.delete("dead")  # already gone
        assert not os.path.exists(path)
        assert store.keys() == ["alive"]
    # The tombstone is durable: reopening must not resurrect the key.
    with BlockStore(root) as store:
        assert store.keys() == ["alive"]


def test_prune_namespace(tmp_path):
    with BlockStore(str(tmp_path / "store")) as store:
        store.put("train/chunk/0", {"a": np.arange(2)})
        store.put("train/chunk/1", {"a": np.arange(2)})
        store.put("test/chunk/0", {"a": np.arange(2)})
        assert store.prune("train/chunk") == 2
        assert store.keys() == ["test/chunk/0"]
        assert store.prune("train/chunk") == 0


def test_retention_latest_epoch_deletes_superseded_blocks(tmp_path):
    """The regression this PR fixes: a multi-epoch run's store directory must
    not retain dead block files for superseded snapshot versions."""
    root = str(tmp_path / "store")
    with BlockStore(root, retention="latest_epoch") as store:
        for version in range(5):
            store.put(f"model/state/v{version}", {"w": np.arange(version + 1)},
                      epoch=version)
        assert store.keys() == ["model/state/v4"]
        block_files = [f for f in os.listdir(store.blocks_dir) if f.endswith(".blk")]
        assert len(block_files) == 1
    with BlockStore(root, retention="latest_epoch") as store:
        arrays, _ = store.get("model/state/v4")
        assert np.array_equal(arrays["w"], np.arange(5))


def test_retention_latest_epoch_prunes_stale_families_at_open(tmp_path):
    root = str(tmp_path / "store")
    with BlockStore(root) as store:  # keep_all writer leaves every version
        store.put("fam/v1", {"a": np.arange(1)}, epoch=1)
        store.put("fam/v2", {"a": np.arange(2)}, epoch=2)
        store.put("other", {"a": np.arange(3)})  # no epoch: never pruned
    with BlockStore(root, retention="latest_epoch") as store:
        assert sorted(store.keys()) == ["fam/v2", "other"]


def test_retention_keep_all_is_default(tmp_path):
    with BlockStore(str(tmp_path / "store")) as store:
        assert store.retention == "keep_all"
        store.put("fam/v1", {"a": np.arange(1)}, epoch=1)
        store.put("fam/v2", {"a": np.arange(2)}, epoch=2)
        assert sorted(store.keys()) == ["fam/v1", "fam/v2"]


def test_retention_validation(tmp_path):
    with pytest.raises(LabelingError):
        BlockStore(str(tmp_path / "store"), retention="bogus")


def test_index_compacts_inline_under_churn(tmp_path):
    """Repeated re-puts of the same key must not grow the index without
    bound: the inline compaction keeps it proportional to the live keys."""
    with BlockStore(str(tmp_path / "store")) as store:
        for round_ in range(500):
            store.put("hot", {"a": np.array([round_])})
        with open(store.index_path, encoding="utf-8") as handle:
            lines = sum(1 for _ in handle)
        assert lines < 300  # far below the 500 appends issued
        block_files = [f for f in os.listdir(store.blocks_dir) if f.endswith(".blk")]
        assert len(block_files) == 1
        arrays, _ = store.get("hot")
        assert arrays["a"][0] == 499


def test_chunk_checkpointer_prune_beyond(tmp_path):
    with BlockStore(str(tmp_path / "store")) as store:
        ckpt = ChunkCheckpointer(store, "train")
        for index in range(6):
            ckpt.record(make_result(index, with_features=False))
        assert ckpt.prune_beyond(4) == 2
        assert ckpt.completed == {0, 1, 2, 3}
        assert ckpt.prune_beyond(4) == 0


# ------------------------------------------------------- chunk checkpointer
def test_chunk_checkpointer_round_trip(tmp_path):
    with BlockStore(str(tmp_path / "store")) as store:
        ckpt = ChunkCheckpointer(store, "train")
        for index in range(3):
            ckpt.record(make_result(index))
        assert ckpt.completed == {0, 1, 2}
        for index in range(3):
            original = make_result(index)
            loaded = ckpt.load(index)
            assert loaded.index == original.index
            assert loaded.num_candidates == original.num_candidates
            assert loaded.errors == original.errors
            assert np.array_equal(loaded.row_offsets, original.row_offsets)
            assert np.array_equal(loaded.cols, original.cols)
            assert np.array_equal(loaded.values, original.values)
            assert np.array_equal(loaded.features.values, original.features.values)
            assert np.array_equal(loaded.features.cols, original.features.cols)
        # Reopening sees the same completed set.
        fresh = ChunkCheckpointer(store, "train")
        assert fresh.completed == {0, 1, 2}
        # Splits are independent namespaces.
        assert ChunkCheckpointer(store, "test").completed == set()


def test_chunk_checkpointer_disables_on_disk_full(tmp_path):
    with BlockStore(str(tmp_path / "store")) as store:
        ckpt = ChunkCheckpointer(store, "train")
        ckpt.record(make_result(0, with_features=False))
        faults.install("disk_full@1")
        try:
            with pytest.warns(RuntimeWarning, match="checkpointing disabled"):
                ckpt.record(make_result(1, with_features=False))
        finally:
            faults.install(None)
        assert ckpt.disabled
        assert ckpt.completed == {0}
        # Further records are silent no-ops.
        ckpt.record(make_result(2, with_features=False))
        assert ckpt.completed == {0}


# ------------------------------------------------------- epoch checkpointer
def test_epoch_checkpoint_round_trip(tmp_path):
    with BlockStore(str(tmp_path / "store")) as store:
        ckpt = EpochCheckpoint(store, "end_model")
        assert ckpt.load() is None
        state = {"epoch": 4, "packed": np.arange(6.0), "adam": {"step_count": 9}}
        ckpt.save(state)
        loaded = ckpt.load()
        assert loaded["epoch"] == 4
        assert np.array_equal(loaded["packed"], state["packed"])
        # Saves supersede each other.
        ckpt.save({"epoch": 5, "packed": np.zeros(2)})
        assert ckpt.load()["epoch"] == 5


def test_epoch_checkpoint_disables_on_disk_full(tmp_path):
    with BlockStore(str(tmp_path / "store")) as store:
        ckpt = EpochCheckpoint(store, "end_model")
        faults.install("disk_full@0")
        try:
            with pytest.warns(RuntimeWarning, match="epoch checkpointing disabled"):
                ckpt.save({"epoch": 1, "packed": np.zeros(2)})
        finally:
            faults.install(None)
        assert ckpt.disabled
        assert ckpt.load() is None


# ------------------------------------------------------ stored feature blocks
def test_stored_feature_blocks_require_completeness(tmp_path):
    with BlockStore(str(tmp_path / "store")) as store:
        ckpt = ChunkCheckpointer(store, "train")
        ckpt.record(make_result(0))
        with pytest.raises(LabelingError, match="missing chunks"):
            StoredFeatureBlocks(ckpt, num_blocks=3, output_dim=16)


def test_stored_feature_blocks_serve_overrides(tmp_path):
    with BlockStore(str(tmp_path / "store")) as store:
        ckpt = ChunkCheckpointer(store, "train")
        ckpt.record(make_result(0))
        sentinel = object()
        blocks = StoredFeatureBlocks(
            ckpt, num_blocks=2, output_dim=16, overrides={1: sentinel}
        )
        assert len(blocks) == 2
        assert blocks[1] is sentinel
        built = blocks[0]
        assert built.shape == (10, 16)
        with pytest.raises(IndexError):
            blocks[2]
