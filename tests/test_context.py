"""Unit tests for the context hierarchy, preprocessing, and candidate extraction."""

import pytest

from repro.context import (
    CandidateExtractor,
    Corpus,
    DictionaryEntityTagger,
    PairedEntityCandidateSpace,
    SimpleSentenceSplitter,
    SimpleTokenizer,
    TextPreprocessor,
)
from repro.context.candidates import Candidate, SentenceView, SpanView
from repro.exceptions import ContextError


def make_corpus():
    tagger = DictionaryEntityTagger(
        {
            "chemical": {"magnesium": "chem:1"},
            "disease": {"preeclampsia": "dis:1", "renal failure": "dis:2"},
        }
    )
    return Corpus("test", preprocessor=TextPreprocessor(entity_tagger=tagger))


def test_tokenizer_offsets_roundtrip():
    words, offsets = SimpleTokenizer().tokenize("Magnesium causes harm.")
    assert words[0] == "Magnesium"
    start, end = offsets[0]
    assert "Magnesium causes harm."[start:end] == "Magnesium"


def test_sentence_splitter():
    parts = SimpleSentenceSplitter().split("One sentence. Two sentence! Three?")
    assert len(parts) == 3


def test_dictionary_tagger_multiword_and_case():
    tagger = DictionaryEntityTagger({"disease": {"Renal Failure": "dis:2"}})
    tags = tagger.tag(["acute", "renal", "failure", "observed"])
    assert len(tags) == 1
    assert (tags[0].word_start, tags[0].word_end) == (1, 3)


def test_corpus_ingest_and_candidate_extraction():
    corpus = make_corpus()
    corpus.add_document("d1", "Magnesium causes preeclampsia in rare cases.", split="train")
    extractor = CandidateExtractor(
        PairedEntityCandidateSpace("causes", "chemical", "disease"),
        gold_labeler=lambda c: 1,
    )
    created = extractor.extract(corpus)
    assert created == 1
    candidates = corpus.candidates("train")
    assert len(candidates) == 1
    candidate = candidates[0]
    assert candidate.span1.entity_type == "chemical"
    assert candidate.span2.entity_type == "disease"
    assert candidate.gold_label == 1
    assert "causes" in candidate.words_between()


def test_same_type_pairs_unordered():
    space = PairedEntityCandidateSpace("spouse", "person", "person")
    corpus = Corpus(
        "p",
        preprocessor=TextPreprocessor(
            entity_tagger=DictionaryEntityTagger(
                {"person": {"ada": "p1", "bob": "p2", "cam": "p3"}}
            )
        ),
    )
    corpus.add_document("d", "Ada married Bob while Cam watched.", split="train")
    created = CandidateExtractor(space).extract(corpus)
    assert created == 3  # three unordered pairs of three persons


def test_candidate_window_and_distance_helpers():
    candidate = Candidate(
        uid=1,
        span1=SpanView("a", 1, 2),
        span2=SpanView("b", 5, 6),
        sentence=SentenceView(words=["w0", "a", "x", "y", "z", "b", "w6"], text=""),
    )
    assert candidate.token_distance() == 3
    assert candidate.words_between() == ["x", "y", "z"]
    assert candidate.window_left(1) == ["w0"]
    assert candidate.window_right(1) == ["w6"]
    assert candidate.span1_precedes_span2()


def test_candidate_validate_rejects_bad_spans():
    candidate = Candidate(
        uid=1,
        span1=SpanView("a", 0, 9),
        span2=SpanView("b", 1, 2),
        sentence=SentenceView(words=["a", "b"], text=""),
    )
    with pytest.raises(ContextError):
        candidate.validate()


def test_max_token_distance_filter():
    space = PairedEntityCandidateSpace("r", "chemical", "disease", max_token_distance=1)
    corpus = make_corpus()
    corpus.add_document(
        "d", "Magnesium was given long before preeclampsia developed.", split="train"
    )
    assert CandidateExtractor(space).extract(corpus) == 0
