"""Differential crash/resume tests: a killed run resumes bit-identically.

Each scenario forks a child that runs the streaming pipeline against a
block store with a deterministic kill fault installed (master SIGKILLed
after N durable chunk blocks, or after N end-model epochs — see
:mod:`repro.labeling.engine.faults`), asserts the child really died by
SIGKILL with durable partial progress on disk, then resumes the run in the
parent over the same store and compares everything against an
uninterrupted reference run: Λ must be bitwise identical, and the
probabilistic labels and end-model weights within 1e-12 (bitwise in
practice).  The matrix covers all three executors and both process
transports, because resume replays blocks produced under any of them into
the same accumulator path.
"""

import os
import signal

import numpy as np
import pytest

from repro.datasets.synthetic import (
    stream_text_candidates,
    stream_text_gold,
    text_vote_lfs,
)
from repro.labeling.blockstore import BlockStore, ChunkCheckpointer
from repro.labeling.engine import runtime
from repro.pipeline.snorkel import PipelineConfig, SnorkelPipeline

NUM_LFS = 5
TRAIN_POINTS = 200
TEST_POINTS = 60


def run_pipeline(checkpoint_dir=None, backend="sequential", transport="auto"):
    config = PipelineConfig(
        seed=0,
        streaming=True,
        chunk_size=32,
        generative_epochs=3,
        discriminative_epochs=4,
        num_features=128,
        applier_backend=backend,
        applier_workers=2,
        engine_transport=transport,
        checkpoint_dir=checkpoint_dir,
    )
    lfs = text_vote_lfs(NUM_LFS)
    return SnorkelPipeline(lfs=lfs, config=config).run_streams(
        stream_text_candidates(num_points=TRAIN_POINTS, num_lfs=NUM_LFS, seed=0),
        stream_text_candidates(num_points=TEST_POINTS, num_lfs=NUM_LFS, seed=1),
        stream_text_gold(TEST_POINTS, seed=1),
    )


@pytest.fixture(scope="module")
def reference():
    """One uninterrupted, checkpoint-free run every scenario compares to."""
    return run_pipeline()


def run_and_die(checkpoint_dir, fault_spec, backend, transport):
    """Fork a child that runs the pipeline under ``fault_spec`` until the
    injected SIGKILL; assert it really died that way."""
    pid = os.fork()
    if pid == 0:  # child
        # Drop inherited pool references WITHOUT closing them: the pipes and
        # worker processes belong to the parent.  The child builds its own.
        runtime._POOLS.clear()
        os.environ["REPRO_ENGINE_FAULTS"] = fault_spec
        try:
            run_pipeline(checkpoint_dir, backend, transport)
        finally:
            os._exit(1)  # only reached if the injected kill never fired
    _, status = os.waitpid(pid, 0)
    assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL, (
        f"child under {fault_spec!r} exited with status {status}, "
        "expected death by SIGKILL"
    )


def assert_matches_reference(result, reference):
    assert np.array_equal(result.label_matrix.values, reference.label_matrix.values)
    assert np.abs(result.training_probs - reference.training_probs).max() <= 1e-12
    assert (
        np.abs(
            result.discriminative_model.weights - reference.discriminative_model.weights
        ).max()
        <= 1e-12
    )
    assert result.generative_test_report.f1 == reference.generative_test_report.f1
    assert result.discriminative_test_report.f1 == reference.discriminative_test_report.f1


SCENARIOS = [
    # (backend, transport, fault, durable progress the kill must leave)
    ("sequential", "auto", "die_block@2", "chunks"),
    ("sequential", "auto", "die_epoch@1", "epochs"),
    ("threads", "auto", "die_block@2", "chunks"),
    ("processes", "pickle", "die_block@2", "chunks"),
    ("processes", "shm", "die_block@2", "chunks"),
    ("processes", "shm", "die_epoch@1", "epochs"),
]


@pytest.mark.parametrize("backend,transport,fault,progress", SCENARIOS)
def test_sigkilled_run_resumes_bit_identically(
    tmp_path, reference, backend, transport, fault, progress
):
    if transport == "shm" and not runtime.HAVE_SHM:
        pytest.skip("no shared memory")
    root = str(tmp_path / "ckpt")
    run_and_die(root, fault, backend, transport)

    # The kill left real durable partial progress — the resume below is a
    # genuine mid-run restart, not a fresh run.
    with BlockStore(root) as store:
        completed = ChunkCheckpointer(store, "train").completed
        if progress == "chunks":
            assert completed  # some train chunks durable...
            assert len(completed) < -(-TRAIN_POINTS // 32)  # ...but not all
        else:
            assert "epoch/end_model" in store  # died mid end-model training
            assert store.get_pickle("epoch/end_model")["epoch"] >= 1

    resumed = run_pipeline(root, backend, transport)
    assert_matches_reference(resumed, reference)


def test_double_kill_then_resume(tmp_path, reference):
    """Two consecutive crashes at different points, then a clean resume."""
    root = str(tmp_path / "ckpt")
    run_and_die(root, "die_block@1", "sequential", "auto")
    run_and_die(root, "die_epoch@0", "sequential", "auto")
    resumed = run_pipeline(root, "sequential", "auto")
    assert_matches_reference(resumed, reference)


def test_resume_skips_completed_work(tmp_path, reference):
    """A fully completed store resumes without recomputing: every chunk and
    epoch replays from disk, and the result is still identical."""
    root = str(tmp_path / "ckpt")
    first = run_pipeline(root)
    assert_matches_reference(first, reference)
    with BlockStore(root) as store:
        total_chunks = -(-TRAIN_POINTS // 32) + -(-TEST_POINTS // 32)
        num_blocks = len(store.keys())
    again = run_pipeline(root)
    assert_matches_reference(again, reference)
    with BlockStore(root) as store:
        # Replaying durable work writes nothing new.
        assert len(store.keys()) == num_blocks
        assert len(ChunkCheckpointer(store, "train").completed) == -(
            -TRAIN_POINTS // 32
        )
        assert total_chunks <= num_blocks


def test_torn_block_reexecuted_on_resume(tmp_path, reference):
    """A block corrupted after its durable rename (torn write) is detected
    by checksum at open and its chunk re-executes — never replayed wrong."""
    root = str(tmp_path / "ckpt")
    run_and_die(root, "corrupt_block@2;die_block@4", "sequential", "auto")
    with BlockStore(root) as store:
        completed = ChunkCheckpointer(store, "train").completed
        assert 1 not in completed  # ordinal 2 = second chunk put (after fingerprint)
    resumed = run_pipeline(root)
    assert_matches_reference(resumed, reference)
