"""Tests for the synthetic dataset generators and task registry."""

import numpy as np
import pytest

from repro.datasets import load_task, registered_tasks
from repro.datasets.kb import build_noisy_kb
from repro.datasets.synthetic import generate_correlated_label_matrix, generate_label_matrix
from repro.exceptions import DatasetError
from repro.labeling import LFApplier
from repro.types import POSITIVE


def test_registry_lists_all_six_tasks():
    assert {"cdr", "chem", "ehr", "spouses", "radiology", "crowd"} <= set(registered_tasks())


def test_unknown_task_raises():
    with pytest.raises(DatasetError):
        load_task("nope")


def test_synthetic_matrix_properties():
    data = generate_label_matrix(num_points=300, num_lfs=5, accuracy=0.8, propensity=0.3, seed=0)
    assert data.label_matrix.shape == (300, 5)
    coverage = data.label_matrix.lf_coverage()
    assert np.all(coverage > 0.15) and np.all(coverage < 0.45)
    # Empirical per-LF accuracy on voted rows is near the target.
    values = data.label_matrix.values
    for j in range(5):
        voted = values[:, j] != 0
        accuracy = (values[voted, j] == data.gold_labels[voted]).mean()
        assert 0.65 < accuracy < 0.95


def test_correlated_matrix_reports_planted_pairs():
    data = generate_correlated_label_matrix(num_points=200, num_groups=3, group_size=3, seed=0)
    assert len(data.correlated_pairs) == 3 * 2
    values = data.label_matrix.values
    j, k = data.correlated_pairs[0]
    both = (values[:, j] != 0) & (values[:, k] != 0)
    agreement = (values[both, j] == values[both, k]).mean()
    assert agreement > 0.8


def test_noisy_kb_subsets():
    true_pairs = [("a", str(i)) for i in range(20)]
    all_pairs = true_pairs + [("b", str(i)) for i in range(80)]
    kb = build_noisy_kb("kb", true_pairs, all_pairs, coverage=0.5, precision=1.0, seed=0)
    positive = set(kb.subset("causes"))
    assert positive <= set(map(tuple, all_pairs))
    assert 5 <= len(positive) <= 15
    assert kb.size() >= len(positive)


def test_cdr_task_structure():
    task = load_task("cdr", scale=0.05, seed=0)
    summary = task.summary()
    assert summary.num_lfs >= 25
    assert 0.1 < summary.positive_fraction < 0.4
    assert set(task.candidates) == {"train", "dev", "test"}
    groups = task.lfs_by_type()
    assert {"pattern", "distant_supervision", "structure"} <= set(groups)
    # Gold labels align with candidates in every split.
    for split in ("train", "dev", "test"):
        assert len(task.split_gold(split)) == len(task.split_candidates(split))


def test_chem_task_is_sparse_and_imbalanced():
    task = load_task("chem", scale=0.05, seed=0)
    gold = task.split_gold("train")
    assert (gold == POSITIVE).mean() < 0.15
    matrix = LFApplier(task.lfs).apply(task.split_candidates("train"))
    assert matrix.label_density() < 2.0


def test_radiology_task_has_image_features():
    task = load_task("radiology", scale=0.03, seed=0)
    candidate = task.split_candidates("train")[0]
    assert "image_features" in candidate.metadata
    assert len(candidate.metadata["image_features"]) == task.metadata["image_feature_dim"]


def test_crowd_task_multiclass_and_worker_lfs():
    task = load_task("crowd", scale=0.2, seed=0)
    assert task.cardinality == 5
    assert len(task.lfs) == 102
    matrix = LFApplier(task.lfs).apply(task.split_candidates("train"))
    assert matrix.label_density() > 5
    assert set(np.unique(matrix.values)) <= set(range(0, 6))


def test_task_determinism():
    first = load_task("spouses", scale=0.05, seed=7)
    second = load_task("spouses", scale=0.05, seed=7)
    assert first.summary() == second.summary()
    assert np.array_equal(first.split_gold("train"), second.split_gold("train"))
