"""Unit tests for the in-memory relational store and ORM layer."""

import pytest

from repro.db import Column, ColumnType, Database, ForeignKey, Schema, Table
from repro.db.orm import MappedRecord, Session, schema_for_records
from repro.exceptions import IntegrityError, QueryError, SchemaError


def make_schema():
    return Schema(
        [
            Table("authors", [Column("name", ColumnType.TEXT, nullable=False)]),
            Table(
                "books",
                [
                    Column("title", ColumnType.TEXT),
                    Column("author_id", ColumnType.INTEGER, indexed=True,
                           foreign_key=ForeignKey("authors")),
                    Column("year", ColumnType.INTEGER),
                ],
            ),
        ]
    )


def test_insert_and_get_roundtrip():
    db = Database(make_schema())
    author_id = db.insert("authors", {"name": "ada"})
    book_id = db.insert("books", {"title": "notes", "author_id": author_id, "year": 1843})
    assert db.get("books", book_id)["title"] == "notes"
    assert db.count("books") == 1


def test_auto_increment_keys_are_unique():
    db = Database(make_schema())
    keys = [db.insert("authors", {"name": f"a{i}"}) for i in range(10)]
    assert len(set(keys)) == 10


def test_duplicate_primary_key_rejected():
    db = Database(make_schema())
    db.insert("authors", {"id": 1, "name": "ada"})
    with pytest.raises(IntegrityError):
        db.insert("authors", {"id": 1, "name": "bob"})


def test_foreign_key_enforced():
    db = Database(make_schema())
    with pytest.raises(IntegrityError):
        db.insert("books", {"title": "x", "author_id": 999})


def test_type_validation():
    db = Database(make_schema())
    with pytest.raises(IntegrityError):
        db.insert("authors", {"name": 123})


def test_not_null_enforced():
    db = Database(make_schema())
    with pytest.raises(IntegrityError):
        db.insert("authors", {"name": None})


def test_unknown_column_rejected():
    db = Database(make_schema())
    with pytest.raises(SchemaError):
        db.insert("authors", {"name": "ada", "nope": 1})


def test_find_by_uses_index_and_scan_agree():
    db = Database(make_schema())
    author = db.insert("authors", {"name": "ada"})
    other = db.insert("authors", {"name": "bob"})
    for i in range(5):
        db.insert("books", {"title": f"b{i}", "author_id": author if i % 2 == 0 else other})
    indexed = db.find_by("books", "author_id", author)
    scanned = [row for row in db.scan("books") if row["author_id"] == author]
    assert {row["id"] for row in indexed} == {row["id"] for row in scanned}


def test_query_filter_order_limit_project():
    db = Database(make_schema())
    author = db.insert("authors", {"name": "ada"})
    for i in range(5):
        db.insert("books", {"title": f"b{i}", "author_id": author, "year": 2000 + i})
    rows = (
        db.query("books").filter("year", lambda y: y >= 2002).order_by("year", descending=True)
        .limit(2).project("title", "year").all()
    )
    assert [row["year"] for row in rows] == [2004, 2003]
    assert set(rows[0]) == {"title", "year"}


def test_query_join():
    db = Database(make_schema())
    author = db.insert("authors", {"name": "ada"})
    db.insert("books", {"title": "b", "author_id": author})
    joined = db.query("books").join("authors", on=("author_id", "id"))
    assert joined[0]["authors.name"] == "ada"


def test_query_one_errors_on_multiple():
    db = Database(make_schema())
    db.insert("authors", {"name": "ada"})
    db.insert("authors", {"name": "bob"})
    with pytest.raises(QueryError):
        db.query("authors").one()


def test_delete_removes_row_and_index_entry():
    db = Database(make_schema())
    author = db.insert("authors", {"name": "ada"})
    book = db.insert("books", {"title": "b", "author_id": author})
    db.delete("books", book)
    assert db.count("books") == 0
    assert db.find_by("books", "author_id", author) == []


class Widget(MappedRecord):
    __tablename__ = "widgets"
    __fields__ = ("label", "parent_id")


class Gadget(MappedRecord):
    __tablename__ = "gadgets"
    __fields__ = ("widget_id", "value")


def test_orm_session_roundtrip_and_children():
    session = Session(Database(schema_for_records([Widget, Gadget])))
    widget = session.add(Widget(label="w"))
    session.add_all([Gadget(widget_id=widget.id, value=i) for i in range(3)])
    assert session.count(Gadget) == 3
    children = session.children(widget, Gadget, "widget_id")
    assert sorted(g.value for g in children) == [0, 1, 2]
    assert session.get(Widget, widget.id) is widget  # identity map


def test_orm_rejects_unknown_fields():
    with pytest.raises(SchemaError):
        Widget(label="w", bogus=1)
