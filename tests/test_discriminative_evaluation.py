"""Tests for the discriminative models, featurizers, and evaluation metrics."""

import numpy as np
import pytest

from repro.context.candidates import Candidate, SentenceView, SpanView
from repro.discriminative import (
    AdamOptimizer,
    HashingVectorizer,
    NoiseAwareLogisticRegression,
    NoiseAwareMLP,
    RelationFeaturizer,
)
from repro.discriminative.softmax import NoiseAwareSoftmaxRegression
from repro.evaluation import (
    BinaryScorer,
    accuracy,
    f1_score,
    precision_recall_f1,
    roc_auc,
)
from repro.evaluation.metrics import relative_improvement
from repro.evaluation.splits import assign_document_splits, split_indices, split_sizes
from repro.exceptions import ConfigurationError, NotFittedError


def make_linear_data(n=400, d=10, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = np.where(X @ w > 0, 1, -1)
    return X, y


def test_adam_decreases_quadratic():
    optimizer = AdamOptimizer(learning_rate=0.1)
    x = np.array([5.0, -3.0])
    for _ in range(200):
        x = optimizer.step(x, 2 * x)
    assert np.linalg.norm(x) < 0.5


def test_logistic_regression_learns_separable_data():
    X, y = make_linear_data()
    model = NoiseAwareLogisticRegression(epochs=40, seed=0).fit(X, (y == 1).astype(float))
    assert model.score(X, y) > 0.9


def test_logistic_regression_accepts_soft_labels():
    X, y = make_linear_data(seed=1)
    soft = np.clip((y == 1).astype(float) * 0.8 + 0.1, 0, 1)
    model = NoiseAwareLogisticRegression(epochs=40, seed=0).fit(X, soft)
    assert model.score(X, y) > 0.85


def test_mlp_learns_nonlinear_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(500, 2))
    y = np.where(X[:, 0] * X[:, 1] > 0, 1, -1)  # XOR-like
    model = NoiseAwareMLP(hidden_sizes=(16,), epochs=120, learning_rate=0.02, seed=0)
    model.fit(X, (y == 1).astype(float))
    assert model.score(X, y) > 0.8


def test_softmax_regression_multiclass():
    rng = np.random.default_rng(0)
    centers = np.array([[2, 0], [-2, 0], [0, 2]])
    labels = rng.integers(1, 4, size=300)
    X = centers[labels - 1] + rng.normal(scale=0.5, size=(300, 2))
    model = NoiseAwareSoftmaxRegression(num_classes=3, epochs=60, seed=0).fit(X, labels)
    assert model.score(X, labels) > 0.9
    probs = model.predict_proba(X)
    assert np.allclose(probs.sum(axis=1), 1.0)


def test_unfitted_models_raise():
    with pytest.raises(NotFittedError):
        NoiseAwareLogisticRegression().predict_proba(np.zeros((1, 2)))
    with pytest.raises(NotFittedError):
        NoiseAwareMLP().predict_proba(np.zeros((1, 2)))


def test_hashing_vectorizer_deterministic_and_shaped():
    vectorizer = HashingVectorizer(num_features=64)
    a = vectorizer.transform_tokens(["the", "drug", "causes", "harm"])
    b = vectorizer.transform_tokens(["the", "drug", "causes", "harm"])
    assert np.array_equal(a, b)
    assert a.shape == (64,)
    assert np.any(a != 0)


def test_relation_featurizer_output_dim():
    featurizer = RelationFeaturizer(num_features=128).fit()
    candidate = Candidate(
        uid=0,
        span1=SpanView("magnesium", 0, 1),
        span2=SpanView("seizures", 2, 3),
        sentence=SentenceView(words=["magnesium", "causes", "seizures"], text=""),
    )
    features = featurizer.transform([candidate])
    assert features.shape == (1, featurizer.output_dim)


def test_metrics_precision_recall_f1():
    gold = [1, 1, -1, -1]
    pred = [1, -1, 1, -1]
    precision, recall, f1 = precision_recall_f1(gold, pred)
    assert precision == pytest.approx(0.5)
    assert recall == pytest.approx(0.5)
    assert f1 == pytest.approx(0.5)
    assert accuracy(gold, pred) == pytest.approx(0.5)


def test_abstain_predictions_count_as_negative():
    assert f1_score([1, -1], [0, 0]) == 0.0
    assert precision_recall_f1([1, -1], [1, 0]) == (1.0, 1.0, 1.0)


def test_roc_auc_perfect_and_random():
    gold = np.array([1, 1, -1, -1])
    assert roc_auc(gold, [0.9, 0.8, 0.2, 0.1]) == pytest.approx(1.0)
    assert roc_auc(gold, [0.1, 0.2, 0.8, 0.9]) == pytest.approx(0.0)
    assert roc_auc(np.array([1, 1]), [0.5, 0.5]) == 0.5


def test_scorer_buckets_sum_to_total():
    scorer = BinaryScorer()
    gold = np.array([1, 1, -1, -1, -1])
    report = scorer.score_probabilities(gold, [0.9, 0.2, 0.8, 0.4, 0.1])
    total_bucketed = (
        len(report.true_positive_indices) + len(report.false_positive_indices)
        + len(report.true_negative_indices) + len(report.false_negative_indices)
    )
    assert total_bucketed == gold.size
    assert report.tp + report.fp + report.tn + report.fn == gold.size
    assert report.auc is not None


def test_relative_improvement():
    assert relative_improvement(0.6, 0.3) == pytest.approx(100.0)


def test_split_indices_partition():
    splits = split_indices(100, 0.1, 0.2, seed=0)
    combined = np.concatenate([splits["train"], splits["dev"], splits["test"]])
    assert sorted(combined.tolist()) == list(range(100))
    assert len(splits["dev"]) == 10
    assert len(splits["test"]) == 20


def test_assign_document_splits_and_sizes():
    assignment = assign_document_splits(50, 0.1, 0.1, seed=0)
    sizes = split_sizes(assignment)
    assert sizes.total == 50
    assert sizes.dev == 5 and sizes.test == 5


def test_split_fraction_validation():
    with pytest.raises(ConfigurationError):
        split_indices(10, 0.6, 0.6)
