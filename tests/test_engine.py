"""The labeling execution engine: executor equivalence, streaming, faults.

The engine contract is that results are independent of *how* the work ran:
every backend (sequential / threads / processes), every chunk size, and
every input type (list, generator, one-shot iterator) must produce the same
label matrix (dense and sparse), the same merged error counts, and the same
report shape.  Process workers receive candidate chunks by pickling, so the
suite uses the picklable synthetic streaming candidates.
"""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    SyntheticCandidate,
    stream_synthetic_candidates,
    synthetic_stream_gold,
    synthetic_vote_lfs,
)
from repro.exceptions import ConfigurationError, LabelingError
from repro.labeling import LabelingFunction, LFApplier
from repro.labeling.engine import ExecutionPlan, iter_chunks, run_plan
from repro.pipeline.snorkel import PipelineConfig

BACKENDS = ("sequential", "threads", "processes")


def make_candidates(num_points=120, num_lfs=5, seed=0):
    return list(
        stream_synthetic_candidates(
            num_points=num_points, num_lfs=num_lfs, propensity=0.4, seed=seed
        )
    )


class _FailOnMultiplesBody:
    """Picklable LF body that raises on candidates whose uid % divisor == 0."""

    def __init__(self, index: int, divisor: int) -> None:
        self.index = index
        self.divisor = divisor

    def __call__(self, candidate: SyntheticCandidate) -> int:
        if candidate.uid % self.divisor == 0:
            raise KeyError(f"boom on {candidate.uid}")
        return int(candidate.votes[self.index])


def failing_lfs(num_lfs=4):
    return [
        LabelingFunction(f"fail_{j}", _FailOnMultiplesBody(j, divisor=3 + j))
        for j in range(num_lfs)
    ]


# ----------------------------------------------------------------- equivalence
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("sparse", [False, True])
def test_backends_match_sequential_reference(backend, sparse):
    candidates = make_candidates()
    lfs = synthetic_vote_lfs(5)
    reference = LFApplier(lfs).apply(candidates)
    applier = LFApplier(lfs, chunk_size=16, backend=backend, num_workers=2)
    matrix = applier.apply(candidates, sparse=sparse)
    assert matrix.is_sparse == sparse
    assert np.array_equal(matrix.values, reference.values)
    assert matrix.lf_names == reference.lf_names
    report = applier.last_report
    assert report.backend == backend
    assert report.num_workers == (1 if backend == "sequential" else 2)
    assert report.num_candidates == len(candidates)
    assert report.num_chunks == -(-len(candidates) // 16)
    assert len(report.chunk_seconds) == report.num_chunks
    assert report.total_chunk_seconds >= 0.0


@pytest.mark.parametrize("chunk_size", [1, 7, 1000])
def test_results_independent_of_chunk_size(chunk_size):
    candidates = make_candidates(num_points=50)
    lfs = synthetic_vote_lfs(5)
    reference = LFApplier(lfs).apply(candidates)
    matrix = LFApplier(lfs, chunk_size=chunk_size, backend="threads", num_workers=3).apply(
        candidates, sparse=True
    )
    assert np.array_equal(matrix.values, reference.values)


@pytest.mark.parametrize("backend", BACKENDS)
def test_error_counts_merge_identically(backend):
    candidates = make_candidates(num_points=90, num_lfs=4)
    lfs = failing_lfs(4)
    sequential = LFApplier(lfs, fault_tolerant=True)
    expected = sequential.apply(candidates)
    applier = LFApplier(lfs, fault_tolerant=True, chunk_size=8, backend=backend, num_workers=2)
    matrix = applier.apply(candidates, sparse=True)
    assert np.array_equal(matrix.values, expected.values)
    assert applier.last_report.errors == sequential.last_report.errors
    assert applier.last_report.num_errors == sequential.last_report.num_errors
    # uid 0 fails for every LF; multiples of the divisor fail per LF.
    assert applier.last_report.errors["fail_0"] == len(
        [c for c in candidates if c.uid % 3 == 0]
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_non_fault_tolerant_propagates_lf_errors(backend):
    candidates = make_candidates(num_points=30, num_lfs=2)
    applier = LFApplier(
        failing_lfs(2), fault_tolerant=False, chunk_size=4, backend=backend, num_workers=2
    )
    with pytest.raises(LabelingError):
        applier.apply(candidates)


# -------------------------------------------------------------------- streaming
@pytest.mark.parametrize("backend", BACKENDS)
def test_generator_input_matches_list_input(backend):
    lfs = synthetic_vote_lfs(6)
    reference = LFApplier(lfs).apply(make_candidates(num_points=200, num_lfs=6, seed=3))
    applier = LFApplier(lfs, chunk_size=32, backend=backend, num_workers=2)
    stream = stream_synthetic_candidates(num_points=200, num_lfs=6, propensity=0.4, seed=3)
    matrix = applier.apply(stream, sparse=True)
    # Streaming + sparse never materializes the candidate list or a dense
    # (m, n) array, yet the output is identical to the dense sequential run.
    assert np.array_equal(matrix.values, reference.values)
    assert applier.last_report.num_candidates == 200


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("sparse", [False, True])
def test_empty_iterator(backend, sparse):
    lfs = synthetic_vote_lfs(4)
    applier = LFApplier(lfs, backend=backend, num_workers=2)
    matrix = applier.apply((c for c in ()), sparse=sparse)
    assert matrix.shape == (0, 4)
    assert applier.last_report.num_candidates == 0
    assert applier.last_report.num_chunks == 0
    assert applier.last_report.errors == {}


def test_one_shot_iterator_is_consumed_once():
    candidates = iter(make_candidates(num_points=40))
    lfs = synthetic_vote_lfs(5)
    matrix = LFApplier(lfs, chunk_size=8).apply(candidates, sparse=True)
    assert matrix.shape == (40, 5)
    assert next(candidates, None) is None


def test_iter_chunks_draws_lazily():
    drawn = []

    def producer():
        for i in range(1000):
            drawn.append(i)
            yield i

    chunks = iter_chunks(producer(), 10)
    first = next(chunks)
    assert first.index == 0
    assert first.start_row == 0
    assert len(first.candidates) == 10
    # Only one chunk's worth of the stream has been pulled.
    assert len(drawn) == 10
    second = next(chunks)
    assert second.start_row == 10
    assert len(drawn) == 20


def test_stream_gold_matches_candidates():
    gold = synthetic_stream_gold(64, seed=9)
    streamed = [c.gold for c in stream_synthetic_candidates(64, 3, seed=9)]
    assert np.array_equal(gold, np.asarray(streamed))


# ------------------------------------------------------------------ validation
def test_mixed_cardinality_rejected_at_construction():
    lfs = [
        LabelingFunction("binary", lambda c: 1, cardinality=2),
        LabelingFunction("ternary", lambda c: 2, cardinality=3),
    ]
    with pytest.raises(LabelingError, match="cardinality"):
        LFApplier(lfs)


def test_uniform_cardinality_recorded():
    lfs = [
        LabelingFunction("a", lambda c: 1, cardinality=3),
        LabelingFunction("b", lambda c: 2, cardinality=3),
    ]
    applier = LFApplier(lfs)
    assert applier.cardinality == 3
    matrix = applier.apply([SyntheticCandidate(uid=0, gold=1, votes=(1, 2))])
    assert matrix.cardinality == 3


def test_invalid_plan_parameters_rejected():
    with pytest.raises(LabelingError):
        ExecutionPlan(chunk_size=0)
    with pytest.raises(LabelingError):
        ExecutionPlan(backend="gpu")
    with pytest.raises(LabelingError):
        ExecutionPlan(num_workers=0)
    with pytest.raises(LabelingError):
        LFApplier(synthetic_vote_lfs(2), backend="fleet")
    with pytest.raises(LabelingError):
        LFApplier(synthetic_vote_lfs(2), num_workers=-1)


def test_applier_attributes_stay_live_after_construction():
    # The plan is rebuilt per apply, so mutating the public attributes works
    # (fault_tolerant and chunk_size were historically read at apply time).
    candidates = make_candidates(num_points=12, num_lfs=2)
    applier = LFApplier(failing_lfs(2))
    applier.fault_tolerant = True
    applier.chunk_size = 4
    matrix = applier.apply(candidates)
    assert applier.last_report.num_errors > 0
    assert applier.last_report.num_chunks == 3
    reference = LFApplier(failing_lfs(2), fault_tolerant=True).apply(candidates)
    assert np.array_equal(matrix.values, reference.values)


def test_pipeline_config_validates_applier_knobs():
    with pytest.raises(ConfigurationError):
        PipelineConfig(applier_backend="gpu")
    with pytest.raises(ConfigurationError):
        PipelineConfig(applier_workers=0)
    config = PipelineConfig(applier_backend="threads", applier_workers=None)
    assert config.applier_backend == "threads"


def test_run_plan_direct_use():
    lfs = synthetic_vote_lfs(3)
    candidates = make_candidates(num_points=25, num_lfs=3, seed=1)
    plan = ExecutionPlan(chunk_size=10, backend="threads", num_workers=2)
    result = run_plan(lfs, iter(candidates), plan)
    assert result.num_candidates == 25
    assert result.num_chunks == 3
    assert result.backend == "threads"
    assert result.num_workers == 2
    dense = np.zeros((25, 3), dtype=np.int64)
    dense[result.rows, result.cols] = result.values
    assert np.array_equal(dense, LFApplier(lfs).apply(candidates).values)
