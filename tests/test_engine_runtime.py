"""The persistent worker runtime: pool lifecycle, crashes, resubmission.

What this suite pins down:

* **Single spawn** — a pool spawns its workers once; repeated runs (and
  repeated applies through the global pool, and a full streaming pipeline
  run) reuse the same processes, observed via a worker-pid probe task.
* **Crash surfacing** — a worker dying mid-run raises the coded engine
  error (``EN100``) naming the lost chunk, and the pool replaces the dead
  worker so subsequent runs still work.
* **Fault-tolerant resubmission** — a crash in a fault-tolerant run
  resubmits the lost chunk and the merged triples match the sequential
  reference; a chunk that kills its worker on every attempt fails after
  ``MAX_CHUNK_ATTEMPTS``.
* **Clean shutdown** — ``close()`` reaps every worker process and leaves no
  shared-memory segments behind.
"""

import glob
import os
import signal
import time

import numpy as np
import pytest

from repro.datasets.synthetic import (
    stream_synthetic_candidates,
    stream_text_candidates,
    stream_text_gold,
    synthetic_vote_lfs,
    text_vote_lfs,
)
from repro.labeling import LabelingFunction, LFApplier
from repro.labeling.engine import (
    CSRAccumulator,
    TaskSpec,
    TransportCorruptionError,
    WorkerCrashError,
    WorkerPool,
    WorkerTimeoutError,
    apply_chunk,
    iter_chunks,
)
from repro.labeling.engine import faults, runtime
from repro.labeling.engine.accumulator import ChunkResult
from repro.pipeline.snorkel import PipelineConfig, SnorkelPipeline


def make_candidates(num_points=200, num_lfs=4, seed=1):
    return list(
        stream_synthetic_candidates(
            num_points=num_points, num_lfs=num_lfs, propensity=0.4, seed=seed
        )
    )


def _pid_probe_task(payload, fault_tolerant, index, start_row, candidates):
    """Emit one triple per chunk whose value is the executing worker's pid."""
    return ChunkResult(
        index=index,
        start_row=start_row,
        num_candidates=len(candidates),
        row_offsets=np.zeros(1, dtype=np.int64),
        cols=np.zeros(1, dtype=np.int64),
        values=np.array([os.getpid()], dtype=np.int64),
    )


def _crash_task(payload, fault_tolerant, index, start_row, candidates):
    """Kill the worker outright on chunk ``payload`` (no flag: every attempt)."""
    if index == payload:
        os._exit(3)
    return _pid_probe_task(None, fault_tolerant, index, start_row, candidates)


def _crash_once_task(payload, fault_tolerant, index, start_row, candidates):
    """Kill the worker on chunk ``crash_index`` the first time only."""
    lfs, flag, crash_index = payload
    if index == crash_index and not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(5)
    return apply_chunk(lfs, fault_tolerant, index, start_row, candidates)


def _probe_pids(pool, candidates, transport="auto", chunk_size=25):
    accumulator = CSRAccumulator()
    spec = TaskSpec(task=_pid_probe_task)
    pool.run(spec, iter_chunks(candidates, chunk_size), accumulator, transport=transport)
    return set(accumulator.merge().values.tolist())


# ------------------------------------------------------------------ single spawn
def test_pool_spawns_workers_exactly_once():
    candidates = make_candidates()
    pool = WorkerPool(num_workers=2)
    try:
        first = _probe_pids(pool, candidates)
        assert len(first) == 2  # both workers took chunks
        assert pool.total_spawned == 2
        # Repeat runs — including a transport switch — reuse the same pids.
        assert _probe_pids(pool, candidates) == first
        assert _probe_pids(pool, candidates, transport="pickle") == first
        assert pool.total_spawned == 2
    finally:
        pool.close()


def test_applier_reuses_global_pool_across_applies():
    runtime.shutdown_pools()
    lfs = synthetic_vote_lfs(4)
    candidates = make_candidates()
    reference = LFApplier(lfs).apply(candidates)
    applier = LFApplier(lfs, chunk_size=32, backend="processes", num_workers=2)
    for sparse in (False, True, False):
        matrix = applier.apply(candidates, sparse=sparse)
        assert np.array_equal(matrix.to_dense().values, reference.values)
    assert runtime.get_global_pool(2).total_spawned == 2


def test_pipeline_run_spawns_workers_exactly_once():
    """One streaming pipeline run — apply + fused featurize over two splits —
    on a picklable suite spawns each worker once, total."""
    runtime.shutdown_pools()
    lfs = text_vote_lfs(6)
    config = PipelineConfig(
        seed=0,
        streaming=True,
        chunk_size=32,
        applier_backend="processes",
        applier_workers=2,
        generative_epochs=3,
        discriminative_epochs=3,
        num_features=128,
    )
    result = SnorkelPipeline(lfs=lfs, config=config).run_streams(
        stream_text_candidates(num_points=150, num_lfs=6, seed=0),
        stream_text_candidates(num_points=60, num_lfs=6, seed=1),
        stream_text_gold(60, seed=1),
    )
    assert result.label_matrix.shape == (150, 6)
    assert runtime.get_global_pool(2).total_spawned == 2


def test_unpicklable_closure_suite_runs_via_fork_respawn():
    def make_lf(j):
        def closure_body(candidate):
            return int(candidate.votes[j])

        return LabelingFunction(f"closure_{j}", closure_body)

    lfs = [make_lf(j) for j in range(3)]
    candidates = make_candidates(num_lfs=3)
    reference = LFApplier(lfs).apply(candidates)
    applier = LFApplier(lfs, chunk_size=32, backend="processes", num_workers=2)
    matrix = applier.apply(candidates)
    assert np.array_equal(matrix.values, reference.values)


# ------------------------------------------------------------------ crash paths
def test_worker_crash_raises_coded_error_naming_chunk():
    candidates = make_candidates(num_points=120)
    pool = WorkerPool(num_workers=2)
    try:
        accumulator = CSRAccumulator()
        with pytest.raises(WorkerCrashError) as err:
            pool.run(
                spec=TaskSpec(task=_crash_task, payload=2),
                chunks=iter_chunks(candidates, 20),
                accumulator=accumulator,
                transport="pickle",
            )
        assert err.value.code == "EN100"
        assert err.value.chunk_index == 2
        assert err.value.exit_code == 3
        assert "chunk 2" in str(err.value)
        # The pool replaced the dead worker and keeps serving runs.
        assert len(_probe_pids(pool, candidates)) == 2
    finally:
        pool.close()


def test_fault_tolerant_run_resubmits_after_crash(tmp_path):
    lfs = synthetic_vote_lfs(4)
    candidates = make_candidates()
    reference = LFApplier(lfs, fault_tolerant=True).apply(candidates)
    pool = WorkerPool(num_workers=2)
    try:
        flag = str(tmp_path / "crashed-once")
        accumulator = CSRAccumulator()
        pool.run(
            spec=TaskSpec(
                task=_crash_once_task,
                payload=(lfs, flag, 3),
                fault_tolerant=True,
            ),
            chunks=iter_chunks(candidates, 25),
            accumulator=accumulator,
            transport="auto",
        )
        assert os.path.exists(flag)  # the crash really happened
        merged = accumulator.merge()
        matrix = np.zeros((len(candidates), 4), dtype=np.int64)
        matrix[merged.rows, merged.cols] = merged.values
        assert np.array_equal(matrix, reference.values)
    finally:
        pool.close()


def test_fault_tolerant_gives_up_after_max_attempts():
    pool = WorkerPool(num_workers=2)
    try:
        accumulator = CSRAccumulator()
        with pytest.raises(WorkerCrashError) as err:
            pool.run(
                spec=TaskSpec(task=_crash_task, payload=0, fault_tolerant=True),
                chunks=iter_chunks(make_candidates(num_points=60), 20),
                accumulator=accumulator,
                transport="pickle",
            )
        assert err.value.attempts == runtime.MAX_CHUNK_ATTEMPTS
    finally:
        pool.close()


# ------------------------------------------------------------- hung workers
def _hang_once_task(payload, fault_tolerant, index, start_row, candidates):
    """Sleep far past any deadline on chunk ``hang_index``, first time only."""
    flag, hang_index = payload
    if index == hang_index and not os.path.exists(flag):
        open(flag, "w").close()
        time.sleep(60)
    return _pid_probe_task(None, fault_tolerant, index, start_row, candidates)


def _hang_task(payload, fault_tolerant, index, start_row, candidates):
    """Sleep far past any deadline on chunk ``payload``, every attempt."""
    if index == payload:
        time.sleep(60)
    return _pid_probe_task(None, fault_tolerant, index, start_row, candidates)


def test_hung_worker_raises_coded_timeout_error():
    """Without fault tolerance a chunk past 2x its deadline kills the worker
    and raises EN101 — the run ends instead of deadlocking forever."""
    pool = WorkerPool(num_workers=2)
    try:
        with pytest.warns(RuntimeWarning, match="deadline"):
            with pytest.raises(WorkerTimeoutError) as err:
                pool.run(
                    spec=TaskSpec(task=_hang_task, payload=1),
                    chunks=iter_chunks(make_candidates(num_points=100), 20),
                    accumulator=CSRAccumulator(),
                    transport="pickle",
                    chunk_timeout=0.3,
                )
        assert err.value.code == "EN101"
        assert err.value.chunk_index == 1
        assert "deadline" in str(err.value)
        # The pool replaced the killed worker and keeps serving runs.
        assert len(_probe_pids(pool, make_candidates())) == 2
    finally:
        pool.close()


def test_hung_worker_resubmitted_when_fault_tolerant(tmp_path):
    """A one-off hang under fault tolerance: the worker is killed at the
    escalation deadline, the chunk resubmits, and the run completes whole."""
    pool = WorkerPool(num_workers=2)
    try:
        flag = str(tmp_path / "hung-once")
        accumulator = CSRAccumulator()
        with pytest.warns(RuntimeWarning, match="deadline"):
            pool.run(
                spec=TaskSpec(
                    task=_hang_once_task, payload=(flag, 2), fault_tolerant=True
                ),
                chunks=iter_chunks(make_candidates(num_points=160), 20),
                accumulator=accumulator,
                transport="pickle",
                chunk_timeout=0.3,
            )
        assert os.path.exists(flag)  # the hang really happened
        merged = accumulator.merge()
        assert merged.num_chunks == 8  # every chunk arrived exactly once
        assert merged.num_candidates == 160
    finally:
        pool.close()


def test_hang_forever_gives_up_after_max_attempts():
    pool = WorkerPool(num_workers=2)
    try:
        with pytest.warns(RuntimeWarning, match="deadline"):
            with pytest.raises(WorkerTimeoutError) as err:
                pool.run(
                    spec=TaskSpec(task=_hang_task, payload=0, fault_tolerant=True),
                    chunks=iter_chunks(make_candidates(num_points=60), 20),
                    accumulator=CSRAccumulator(),
                    transport="pickle",
                    chunk_timeout=0.3,
                )
        assert err.value.attempts == runtime.MAX_CHUNK_ATTEMPTS
    finally:
        pool.close()


# ------------------------------------------------------- transport checksums
needs_shm = pytest.mark.skipif(not runtime.HAVE_SHM, reason="no shared memory")


@needs_shm
def test_corrupt_chunk_slot_raises_coded_error():
    """A torn outbound shm slot surfaces as EN102 naming the chunk, not as a
    pickle decode crash deep inside the worker."""
    faults.install("corrupt_shm@1")
    pool = WorkerPool(num_workers=2)
    try:
        with pytest.raises(TransportCorruptionError) as err:
            pool.run(
                spec=TaskSpec(task=_pid_probe_task),
                chunks=iter_chunks(make_candidates(num_points=100), 20),
                accumulator=CSRAccumulator(),
                transport="shm",
            )
        assert err.value.code == "EN102"
        assert err.value.chunk_index == 1
    finally:
        pool.close()
        faults.install(None)


@needs_shm
def test_corrupt_chunk_slot_resubmitted_when_fault_tolerant(tmp_path):
    flag = str(tmp_path / "corrupted-once")
    faults.install(f"corrupt_shm@1:flag={flag}")
    pool = WorkerPool(num_workers=2)
    try:
        accumulator = CSRAccumulator()
        pool.run(
            spec=TaskSpec(task=_pid_probe_task, fault_tolerant=True),
            chunks=iter_chunks(make_candidates(num_points=160), 20),
            accumulator=accumulator,
            transport="shm",
        )
        assert os.path.exists(flag)  # the corruption really happened
        merged = accumulator.merge()
        assert merged.num_chunks == 8
        assert merged.num_candidates == 160
    finally:
        pool.close()
        faults.install(None)


@needs_shm
def test_corrupt_result_blocks_resubmitted_when_fault_tolerant(tmp_path):
    """Result-direction corruption (worker-side ring blocks) is detected by
    the master's per-block crc check and resubmitted the same way."""
    flag = str(tmp_path / "result-corrupted-once")
    faults.install(f"corrupt_result@2:flag={flag}")
    pool = WorkerPool(num_workers=2)  # workers fork after install: plan inherited
    try:
        lfs = synthetic_vote_lfs(4)
        candidates = make_candidates()
        reference = LFApplier(lfs).apply(candidates)
        accumulator = CSRAccumulator()
        pool.run(
            spec=TaskSpec(task=apply_chunk, payload=lfs, fault_tolerant=True),
            chunks=iter_chunks(candidates, 25),
            accumulator=accumulator,
            transport="shm",
        )
        assert os.path.exists(flag)
        merged = accumulator.merge()
        matrix = np.zeros((len(candidates), 4), dtype=np.int64)
        matrix[merged.rows, merged.cols] = merged.values
        assert np.array_equal(matrix, reference.values)
    finally:
        pool.close()
        faults.install(None)


# ---------------------------------------------------------------- clean shutdown
@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="no /dev/shm to inspect")
def test_close_reaps_processes_and_segments():
    candidates = make_candidates()
    pool = WorkerPool(num_workers=2)
    pids = _probe_pids(pool, candidates, transport="shm" if runtime.HAVE_SHM else "pickle")
    prefix = pool._name
    pool.close()
    assert glob.glob(f"/dev/shm/{prefix}*") == []
    for pid in pids:
        with pytest.raises(OSError):
            os.kill(pid, 0)


def test_close_is_idempotent_and_pool_respawns_after_close():
    pool = WorkerPool(num_workers=2)
    try:
        first = _probe_pids(pool, make_candidates())
        assert len(first) == 2
        pool.close()
        pool.close()  # second close is a no-op, not an error
        # The pool stays usable: the next run respawns fresh workers.
        second = _probe_pids(pool, make_candidates())
        assert len(second) == 2
        assert first.isdisjoint(second)
    finally:
        pool.close()
        pool.close()


# ------------------------------------------------------------ pool-state leaks
def _raise_on_load():
    raise RuntimeError("decode boom")


class _ExplodesOnLoad:
    """Pickles fine master-side; raises when a worker unpickles it."""

    def __reduce__(self):
        return (_raise_on_load, ())


class _ExplodesOnDump:
    """Raises inside master-side pickle.dumps (mid-run submit failure)."""

    def __reduce__(self):
        raise TypeError("cannot pickle this candidate")


def _sleep_probe_task(payload, fault_tolerant, index, start_row, candidates):
    """Pid probe that sleeps ``candidates[0]`` seconds first (keeps a worker
    busy so a later submit failure happens with a chunk still in flight)."""
    time.sleep(float(candidates[0]))
    return _pid_probe_task(payload, fault_tolerant, index, start_row, candidates)


def test_inplace_suite_mutation_reaches_pool_workers():
    """Mutating ``applier.lfs`` in place (same list id) must re-attach: the
    pool dedups attaches on payload identity, and reusing the stale
    worker-side suite would silently label with the old LFs."""
    runtime.shutdown_pools()
    lfs = synthetic_vote_lfs(4)
    candidates = make_candidates()
    applier = LFApplier(lfs, chunk_size=32, backend="processes", num_workers=2)
    first = applier.apply(candidates)
    # Swap two LFs in place: the list object keeps its id, the suite changes.
    applier.lfs[0], applier.lfs[1] = applier.lfs[1], applier.lfs[0]
    mutated = applier.apply(candidates)
    reference = LFApplier(applier.lfs).apply(candidates)
    assert np.array_equal(mutated.values, reference.values)
    assert np.array_equal(mutated.values, first.values[:, [1, 0, 2, 3]])


def test_candidate_decode_failure_is_a_task_error_not_a_crash():
    """A candidate that fails to unpickle worker-side surfaces as a per-chunk
    task error naming the cause, not an opaque EN100 worker crash."""
    pool = WorkerPool(num_workers=2)
    try:
        with pytest.raises(RuntimeError, match="decode boom"):
            pool.run(
                spec=TaskSpec(task=_pid_probe_task),
                chunks=iter_chunks([_ExplodesOnLoad()] * 40, 20),
                accumulator=CSRAccumulator(),
                transport="pickle",
            )
        # The workers survived the failed decode: same generation serves on.
        assert pool.total_spawned == 2
        assert len(_probe_pids(pool, make_candidates())) == 2
        assert pool.total_spawned == 2
    finally:
        pool.close()


def test_attach_heals_silently_dead_worker():
    """A worker that died between runs must not raise a raw BrokenPipeError
    out of attach(); the pool destroys it and the next run respawns."""
    candidates = make_candidates()
    pool = WorkerPool(num_workers=2)
    try:
        assert len(_probe_pids(pool, candidates)) == 2
        victim = pool._workers[0]
        os.kill(victim.process.pid, signal.SIGKILL)
        victim.process.join(timeout=5)
        # A fresh payload object forces attach() to send to every worker.
        accumulator = CSRAccumulator()
        pool.run(
            TaskSpec(task=_pid_probe_task, payload=("fresh",)),
            iter_chunks(candidates, 10),
            accumulator,
            transport="pickle",
        )
        assert len(set(accumulator.merge().values.tolist())) == 2
    finally:
        pool.close()


def test_escaped_run_exception_quarantines_in_flight_state():
    """An exception escaping run() with chunks in flight (here: unpicklable
    candidates hit submit() while a worker is busy) must not leak pending
    entries into the next run on the shared pool."""
    pool = WorkerPool(num_workers=2)
    try:
        bad = [0.0] * 20 + [1.0] * 20 + [_ExplodesOnDump()] * 20
        with pytest.raises(TypeError, match="cannot pickle"):
            pool.run(
                spec=TaskSpec(task=_sleep_probe_task),
                chunks=iter_chunks(bad, 20),
                accumulator=CSRAccumulator(),
                transport="pickle",
            )
        # The quarantined generation is gone; the next runs start clean and
        # agree with each other (no duplicate-chunk or stale-result errors).
        candidates = make_candidates()
        assert len(_probe_pids(pool, candidates)) == 2
        assert _probe_pids(pool, candidates) == _probe_pids(pool, candidates)
    finally:
        pool.close()
