"""The persistent worker runtime: pool lifecycle, crashes, resubmission.

What this suite pins down:

* **Single spawn** — a pool spawns its workers once; repeated runs (and
  repeated applies through the global pool, and a full streaming pipeline
  run) reuse the same processes, observed via a worker-pid probe task.
* **Crash surfacing** — a worker dying mid-run raises the coded engine
  error (``EN100``) naming the lost chunk, and the pool replaces the dead
  worker so subsequent runs still work.
* **Fault-tolerant resubmission** — a crash in a fault-tolerant run
  resubmits the lost chunk and the merged triples match the sequential
  reference; a chunk that kills its worker on every attempt fails after
  ``MAX_CHUNK_ATTEMPTS``.
* **Clean shutdown** — ``close()`` reaps every worker process and leaves no
  shared-memory segments behind.
"""

import glob
import os

import numpy as np
import pytest

from repro.datasets.synthetic import (
    stream_synthetic_candidates,
    stream_text_candidates,
    stream_text_gold,
    synthetic_vote_lfs,
    text_vote_lfs,
)
from repro.labeling import LabelingFunction, LFApplier
from repro.labeling.engine import (
    CSRAccumulator,
    TaskSpec,
    WorkerCrashError,
    WorkerPool,
    apply_chunk,
    iter_chunks,
)
from repro.labeling.engine import runtime
from repro.labeling.engine.accumulator import ChunkResult
from repro.pipeline.snorkel import PipelineConfig, SnorkelPipeline


def make_candidates(num_points=200, num_lfs=4, seed=1):
    return list(
        stream_synthetic_candidates(
            num_points=num_points, num_lfs=num_lfs, propensity=0.4, seed=seed
        )
    )


def _pid_probe_task(payload, fault_tolerant, index, start_row, candidates):
    """Emit one triple per chunk whose value is the executing worker's pid."""
    return ChunkResult(
        index=index,
        start_row=start_row,
        num_candidates=len(candidates),
        row_offsets=np.zeros(1, dtype=np.int64),
        cols=np.zeros(1, dtype=np.int64),
        values=np.array([os.getpid()], dtype=np.int64),
    )


def _crash_task(payload, fault_tolerant, index, start_row, candidates):
    """Kill the worker outright on chunk ``payload`` (no flag: every attempt)."""
    if index == payload:
        os._exit(3)
    return _pid_probe_task(None, fault_tolerant, index, start_row, candidates)


def _crash_once_task(payload, fault_tolerant, index, start_row, candidates):
    """Kill the worker on chunk ``crash_index`` the first time only."""
    lfs, flag, crash_index = payload
    if index == crash_index and not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(5)
    return apply_chunk(lfs, fault_tolerant, index, start_row, candidates)


def _probe_pids(pool, candidates, transport="auto", chunk_size=25):
    accumulator = CSRAccumulator()
    spec = TaskSpec(task=_pid_probe_task)
    pool.run(spec, iter_chunks(candidates, chunk_size), accumulator, transport=transport)
    return set(accumulator.merge().values.tolist())


# ------------------------------------------------------------------ single spawn
def test_pool_spawns_workers_exactly_once():
    candidates = make_candidates()
    pool = WorkerPool(num_workers=2)
    try:
        first = _probe_pids(pool, candidates)
        assert len(first) == 2  # both workers took chunks
        assert pool.total_spawned == 2
        # Repeat runs — including a transport switch — reuse the same pids.
        assert _probe_pids(pool, candidates) == first
        assert _probe_pids(pool, candidates, transport="pickle") == first
        assert pool.total_spawned == 2
    finally:
        pool.close()


def test_applier_reuses_global_pool_across_applies():
    runtime.shutdown_pools()
    lfs = synthetic_vote_lfs(4)
    candidates = make_candidates()
    reference = LFApplier(lfs).apply(candidates)
    applier = LFApplier(lfs, chunk_size=32, backend="processes", num_workers=2)
    for sparse in (False, True, False):
        matrix = applier.apply(candidates, sparse=sparse)
        assert np.array_equal(matrix.to_dense().values, reference.values)
    assert runtime.get_global_pool(2).total_spawned == 2


def test_pipeline_run_spawns_workers_exactly_once():
    """One streaming pipeline run — apply + fused featurize over two splits —
    on a picklable suite spawns each worker once, total."""
    runtime.shutdown_pools()
    lfs = text_vote_lfs(6)
    config = PipelineConfig(
        seed=0,
        streaming=True,
        chunk_size=32,
        applier_backend="processes",
        applier_workers=2,
        generative_epochs=3,
        discriminative_epochs=3,
        num_features=128,
    )
    result = SnorkelPipeline(lfs=lfs, config=config).run_streams(
        stream_text_candidates(num_points=150, num_lfs=6, seed=0),
        stream_text_candidates(num_points=60, num_lfs=6, seed=1),
        stream_text_gold(60, seed=1),
    )
    assert result.label_matrix.shape == (150, 6)
    assert runtime.get_global_pool(2).total_spawned == 2


def test_unpicklable_closure_suite_runs_via_fork_respawn():
    def make_lf(j):
        def closure_body(candidate):
            return int(candidate.votes[j])

        return LabelingFunction(f"closure_{j}", closure_body)

    lfs = [make_lf(j) for j in range(3)]
    candidates = make_candidates(num_lfs=3)
    reference = LFApplier(lfs).apply(candidates)
    applier = LFApplier(lfs, chunk_size=32, backend="processes", num_workers=2)
    matrix = applier.apply(candidates)
    assert np.array_equal(matrix.values, reference.values)


# ------------------------------------------------------------------ crash paths
def test_worker_crash_raises_coded_error_naming_chunk():
    candidates = make_candidates(num_points=120)
    pool = WorkerPool(num_workers=2)
    try:
        accumulator = CSRAccumulator()
        with pytest.raises(WorkerCrashError) as err:
            pool.run(
                spec=TaskSpec(task=_crash_task, payload=2),
                chunks=iter_chunks(candidates, 20),
                accumulator=accumulator,
                transport="pickle",
            )
        assert err.value.code == "EN100"
        assert err.value.chunk_index == 2
        assert err.value.exit_code == 3
        assert "chunk 2" in str(err.value)
        # The pool replaced the dead worker and keeps serving runs.
        assert len(_probe_pids(pool, candidates)) == 2
    finally:
        pool.close()


def test_fault_tolerant_run_resubmits_after_crash(tmp_path):
    lfs = synthetic_vote_lfs(4)
    candidates = make_candidates()
    reference = LFApplier(lfs, fault_tolerant=True).apply(candidates)
    pool = WorkerPool(num_workers=2)
    try:
        flag = str(tmp_path / "crashed-once")
        accumulator = CSRAccumulator()
        pool.run(
            spec=TaskSpec(
                task=_crash_once_task,
                payload=(lfs, flag, 3),
                fault_tolerant=True,
            ),
            chunks=iter_chunks(candidates, 25),
            accumulator=accumulator,
            transport="auto",
        )
        assert os.path.exists(flag)  # the crash really happened
        merged = accumulator.merge()
        matrix = np.zeros((len(candidates), 4), dtype=np.int64)
        matrix[merged.rows, merged.cols] = merged.values
        assert np.array_equal(matrix, reference.values)
    finally:
        pool.close()


def test_fault_tolerant_gives_up_after_max_attempts():
    pool = WorkerPool(num_workers=2)
    try:
        accumulator = CSRAccumulator()
        with pytest.raises(WorkerCrashError) as err:
            pool.run(
                spec=TaskSpec(task=_crash_task, payload=0, fault_tolerant=True),
                chunks=iter_chunks(make_candidates(num_points=60), 20),
                accumulator=accumulator,
                transport="pickle",
            )
        assert err.value.attempts == runtime.MAX_CHUNK_ATTEMPTS
    finally:
        pool.close()


# ---------------------------------------------------------------- clean shutdown
@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="no /dev/shm to inspect")
def test_close_reaps_processes_and_segments():
    candidates = make_candidates()
    pool = WorkerPool(num_workers=2)
    pids = _probe_pids(pool, candidates, transport="shm" if runtime.HAVE_SHM else "pickle")
    prefix = pool._name
    pool.close()
    assert glob.glob(f"/dev/shm/{prefix}*") == []
    for pid in pids:
        with pytest.raises(OSError):
            os.kill(pid, 0)
