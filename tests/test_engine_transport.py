"""Differential transport suite: shm ≡ pickle ≡ sequential, bit for bit.

The persistent worker runtime promises that *how* chunk bytes move between
processes is unobservable: for any suite, chunk size, cardinality, and
input, the shared-memory transport, the pickle transport, and the
sequential in-process reference produce identical labels, identical feature
blocks, identical error accounting, and the identical first-raised
exception.  This suite pins all four down, including the edges the shm ring
has to get right — empty candidate streams, all-abstain suites (zero-size
triple blocks), and hypothesis-fuzzed corpora with adversarial text (NUL
bytes, empty strings).
"""

from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import (
    stream_synthetic_candidates,
    stream_text_candidates,
    synthetic_vote_lfs,
    text_vote_lfs,
)
from repro.discriminative.featurizers import RelationFeaturizer
from repro.discriminative.sparse_features import CSRFeatureMatrix
from repro.exceptions import LabelingError
from repro.labeling import LabelingFunction, LFApplier
from repro.types import ABSTAIN, NEGATIVE, POSITIVE

TRANSPORTS = ("pickle", "shm")

NUM_LFS = 5


def make_candidates(num_points=150, seed=2):
    return list(
        stream_synthetic_candidates(
            num_points=num_points, num_lfs=NUM_LFS, propensity=0.4, seed=seed
        )
    )


def process_applier(lfs, chunk_size, transport, fault_tolerant=False):
    return LFApplier(
        lfs,
        fault_tolerant=fault_tolerant,
        chunk_size=chunk_size,
        backend="processes",
        num_workers=2,
        transport=transport,
    )


# ------------------------------------------------------------------- labels
@pytest.mark.parametrize("transport", TRANSPORTS)
@pytest.mark.parametrize("chunk_size", [1, 7, 64, 1000])
def test_labels_bit_identical_across_transports(transport, chunk_size):
    candidates = make_candidates()
    lfs = synthetic_vote_lfs(NUM_LFS)
    reference = LFApplier(lfs).apply(candidates)
    applier = process_applier(lfs, chunk_size, transport)
    dense = applier.apply(candidates)
    sparse = applier.apply(candidates, sparse=True)
    assert np.array_equal(dense.values, reference.values)
    assert np.array_equal(sparse.to_dense().values, reference.values)
    report = applier.last_report
    assert report.transport.mode == transport
    assert len(report.transport_seconds) == report.num_chunks


@pytest.mark.parametrize("transport", TRANSPORTS)
@pytest.mark.parametrize("cardinality", [2, 3])
def test_transports_agree_across_cardinalities(transport, cardinality):
    candidates = list(
        stream_text_candidates(
            num_points=120, num_lfs=NUM_LFS, cardinality=cardinality, seed=4
        )
    )
    lfs = text_vote_lfs(NUM_LFS, cardinality=cardinality)
    reference = LFApplier(lfs).apply(candidates)
    matrix = process_applier(lfs, 17, transport).apply(candidates, sparse=True)
    assert np.array_equal(matrix.to_dense().values, reference.values)
    assert matrix.cardinality == cardinality


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_generator_input_matches_sequential(transport):
    lfs = synthetic_vote_lfs(NUM_LFS)
    reference = LFApplier(lfs).apply(make_candidates(seed=9))
    matrix = process_applier(lfs, 16, transport).apply(
        stream_synthetic_candidates(
            num_points=150, num_lfs=NUM_LFS, propensity=0.4, seed=9
        )
    )
    assert np.array_equal(matrix.values, reference.values)


# ------------------------------------------------------------------ features
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_feature_blocks_bit_identical_across_transports(transport):
    candidates = list(stream_text_candidates(num_points=110, num_lfs=NUM_LFS, seed=5))
    lfs = text_vote_lfs(NUM_LFS)
    featurizer = RelationFeaturizer(num_features=128).fit()
    ref_applier = LFApplier(lfs, chunk_size=23)
    ref_labels, ref_blocks = ref_applier.apply_with_features(
        iter(candidates), featurizer, sparse=True
    )
    applier = process_applier(lfs, 23, transport)
    labels, blocks = applier.apply_with_features(iter(candidates), featurizer, sparse=True)
    assert np.array_equal(labels.to_dense().values, ref_labels.to_dense().values)
    assert len(blocks) == len(ref_blocks)
    stacked = CSRFeatureMatrix.vstack(blocks)
    ref_stacked = CSRFeatureMatrix.vstack(ref_blocks)
    assert np.array_equal(stacked.indptr, ref_stacked.indptr)
    assert np.array_equal(stacked.indices, ref_stacked.indices)
    assert np.array_equal(stacked.data, ref_stacked.data)


# -------------------------------------------------------------------- errors
class _FailEveryNBody:
    """Picklable LF body raising a distinct exception type per residue."""

    def __init__(self, index: int, divisor: int) -> None:
        self.index = index
        self.divisor = divisor

    def __call__(self, candidate) -> int:
        if candidate.uid % self.divisor == 0:
            if candidate.uid % (2 * self.divisor) == 0:
                raise KeyError(f"key {candidate.uid}")
            raise ValueError(f"value {candidate.uid}")
        return int(candidate.votes[self.index])


def failing_lfs(num_lfs=3):
    return [
        LabelingFunction(f"fail_{j}", _FailEveryNBody(j, divisor=3 + j))
        for j in range(num_lfs)
    ]


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_error_details_identical_across_transports(transport):
    candidates = make_candidates(num_points=90)
    lfs = failing_lfs()
    sequential = LFApplier(lfs, fault_tolerant=True)
    expected = sequential.apply(candidates)
    applier = process_applier(lfs, 8, transport, fault_tolerant=True)
    matrix = applier.apply(candidates, sparse=True)
    assert np.array_equal(matrix.to_dense().values, expected.values)
    assert applier.last_report.errors == sequential.last_report.errors
    for name, detail in sequential.last_report.error_details.items():
        pooled = applier.last_report.error_details[name]
        assert pooled.type_counts == detail.type_counts


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_first_raised_exception_identical_across_transports(transport):
    candidates = make_candidates(num_points=60)
    lfs = failing_lfs()
    with pytest.raises(LabelingError) as sequential_err:
        LFApplier(lfs).apply(candidates)
    with pytest.raises(LabelingError) as pooled_err:
        process_applier(lfs, 10, transport).apply(candidates)
    assert type(pooled_err.value) is type(sequential_err.value)
    assert str(pooled_err.value) == str(sequential_err.value)


# --------------------------------------------------------------------- edges
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_empty_candidate_stream(transport):
    lfs = synthetic_vote_lfs(NUM_LFS)
    applier = process_applier(lfs, 64, transport)
    matrix = applier.apply([])
    assert matrix.shape == (0, NUM_LFS)
    assert applier.last_report.num_chunks == 0
    assert applier.last_report.transport_seconds == []


class _AbstainBody:
    def __call__(self, candidate) -> int:
        return ABSTAIN


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_all_abstain_suite_moves_empty_blocks(transport):
    """Zero-size triple blocks still round-trip through the shm ring."""
    candidates = make_candidates(num_points=80)
    lfs = [LabelingFunction(f"abstain_{j}", _AbstainBody()) for j in range(3)]
    matrix = process_applier(lfs, 16, transport).apply(candidates, sparse=True)
    assert matrix.to_dense().values.shape == (80, 3)
    assert not matrix.to_dense().values.any()


# ---------------------------------------------------------------------- fuzz
@dataclass(frozen=True)
class _FuzzCandidate:
    """Picklable text candidate for adversarial-content fuzzing."""

    uid: int
    text: str


class _ByteSumVote:
    """Deterministic pure function of arbitrary unicode text."""

    def __init__(self, modulus: int) -> None:
        self.modulus = modulus

    def __call__(self, candidate: _FuzzCandidate) -> int:
        if not candidate.text:
            return ABSTAIN
        total = sum(candidate.text.encode("utf-8", "surrogatepass"))
        if total % self.modulus == 0:
            return POSITIVE
        if total % self.modulus == 1:
            return NEGATIVE
        return ABSTAIN


_FUZZ_LFS = [LabelingFunction(f"bytesum_{m}", _ByteSumVote(m)) for m in (2, 3, 5)]

_texts = st.lists(
    st.text(
        alphabet=st.characters(
            codec="utf-8", categories=("L", "N", "P", "Zs", "Cc")
        ),
        max_size=40,
    ),
    max_size=60,
)


@settings(max_examples=15, deadline=None)
@given(texts=_texts, chunk_size=st.integers(min_value=1, max_value=32))
def test_fuzzed_corpora_agree_across_transports(texts, chunk_size):
    candidates = [_FuzzCandidate(uid, text) for uid, text in enumerate(texts)]
    reference = LFApplier(_FUZZ_LFS).apply(candidates).values
    for transport in TRANSPORTS:
        matrix = process_applier(_FUZZ_LFS, chunk_size, transport).apply(
            candidates, sparse=True
        )
        assert np.array_equal(matrix.to_dense().values, reference)


def test_nul_bytes_survive_both_transports():
    candidates = [
        _FuzzCandidate(0, "\x00"),
        _FuzzCandidate(1, "a\x00b"),
        _FuzzCandidate(2, ""),
        _FuzzCandidate(3, "\x00" * 100),
    ]
    reference = LFApplier(_FUZZ_LFS).apply(candidates).values
    for transport in TRANSPORTS:
        matrix = process_applier(_FUZZ_LFS, 2, transport).apply(candidates)
        assert np.array_equal(matrix.values, reference)
