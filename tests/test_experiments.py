"""Smoke tests for the experiment drivers (tiny configurations)."""

from repro.experiments import EXPERIMENTS, describe_experiments
from repro.experiments import fig4_advantage, table1_advantage, table2_stats


def test_registry_covers_all_paper_artifacts():
    ids = {spec.experiment_id for spec in EXPERIMENTS}
    assert {"fig4", "fig5", "fig6", "table1", "table2", "table3", "table4",
            "table5", "table6", "table7", "userstudy"} <= ids
    assert "Experiment index" in describe_experiments()


def test_fig4_small_run():
    points = fig4_advantage.run(num_points=200, lf_counts=(2, 10, 50), epochs=5)
    assert len(points) == 3
    assert fig4_advantage.format_table(points)


def test_fig4_sparse_path_matches_dense():
    dense = fig4_advantage.run(num_points=200, lf_counts=(2, 10, 50), epochs=5)
    sparse = fig4_advantage.run(num_points=200, lf_counts=(2, 10, 50), epochs=5, sparse=True)
    for dense_point, sparse_point in zip(dense, sparse):
        assert sparse_point.label_density == dense_point.label_density
        assert abs(sparse_point.learned_advantage - dense_point.learned_advantage) < 1e-10
        assert abs(sparse_point.optimizer_bound - dense_point.optimizer_bound) < 1e-10


def test_table1_small_run():
    rows = table1_advantage.run(tasks=(("cdr", 0.05), ("chem", 0.05)), epochs=5)
    assert {row.task for row in rows} == {"cdr", "chem"}
    assert table1_advantage.format_table(rows)


def test_table2_small_run():
    summaries = table2_stats.run(tasks=(("cdr", 0.05), ("crowd", 0.2)))
    assert table2_stats.format_table2(summaries)
    assert table2_stats.format_table7(summaries)
