"""The vectorized Gibbs kernel layer: plans, coloring, equivalence, reuse.

Four guarantees are pinned down here:

* **Plan validity** — the graph coloring never puts two correlated columns
  (or two columns sharing a correlated partner) in one color, the
  correlation-free suite collapses to a single color, and a plan derived via
  ``select_rows`` is exactly the plan of the row-sliced matrix.
* **Kernel-independence of the deterministic paths** — ``label_posteriors``
  and the EM estimator never sample, so both kernels must produce
  bit-identical posteriors, weights, and probabilistic labels.
* **Seed stability** — each kernel is deterministic under a fixed seed, the
  reference kernel in particular (it is the auditable baseline the
  vectorized kernel is validated against), and the vectorized kernel draws
  identically for dense and sparse storage (both compile the same plan).
* **Distributional equivalence** — the vectorized fused updates sample from
  the same conditionals as the reference loop: exact closed-form marginals
  on independent suites, and reference-matched empirical marginals (within
  Monte-Carlo tolerance) on correlated ones, for k = 2 and k = 3, dense and
  sparse.
"""

import numpy as np
import pytest

import repro.labeling.sparse as sparse_mod
from repro.datasets.synthetic import (
    generate_label_matrix,
    generate_multiclass_label_matrix,
)
from repro.exceptions import LabelModelError
from repro.labeling.sparse import SparseLabelMatrix, intersect_sorted, ranges_gather
from repro.labelmodel.factor_graph import FactorGraphSpec
from repro.labelmodel.generative import GenerativeModel
from repro.labelmodel.gibbs import GibbsSampler
from repro.labelmodel.kernels import (
    SamplerPlan,
    SamplerWorkspace,
    color_columns,
    resolve_kernel,
    run_joint_chain,
)


@pytest.fixture(params=["scipy", "numpy-fallback"])
def backend(request, monkeypatch):
    """Run each test under both the scipy backend and the numpy fallback."""
    if request.param == "numpy-fallback":
        monkeypatch.setattr(sparse_mod, "FORCE_NUMPY_FALLBACK", True)
    elif not sparse_mod.HAVE_SCIPY:
        pytest.skip("scipy not installed")
    return request.param


def _binary_task(num_points=200, num_lfs=8, propensity=0.4, seed=0):
    data = generate_label_matrix(
        num_points=num_points, num_lfs=num_lfs, propensity=propensity, seed=seed
    )
    return data.label_matrix


def _categorical_task(num_points=200, num_lfs=6, cardinality=3, propensity=0.5, seed=0):
    data = generate_multiclass_label_matrix(
        num_points=num_points,
        num_lfs=num_lfs,
        cardinality=cardinality,
        propensity=propensity,
        seed=seed,
    )
    return data.label_matrix


# ------------------------------------------------------------------- coloring
def test_coloring_is_valid_distance_two():
    rng = np.random.default_rng(0)
    for trial in range(20):
        num_lfs = int(rng.integers(4, 24))
        num_pairs = int(rng.integers(0, 2 * num_lfs))
        pairs = {
            (int(a), int(b))
            for a, b in rng.integers(0, num_lfs, size=(num_pairs, 2))
            if a != b
        }
        spec = FactorGraphSpec(num_lfs, pairs)
        colors = color_columns(spec)
        adjacency = spec.neighbor_sets()
        for j, k in spec.correlations:
            assert colors[j] != colors[k], (trial, j, k)
            # The stricter invariant: no shared correlated partner either.
            for a in range(num_lfs):
                for b in range(a + 1, num_lfs):
                    if colors[a] == colors[b] and colors[a] != 0:
                        assert not (adjacency[a] & adjacency[b]), (trial, a, b)
        # Color 0 is exactly the uncorrelated columns (when any exist).
        for j in range(num_lfs):
            assert (colors[j] == 0) == (not adjacency[j])


def test_independent_suite_collapses_to_one_color(backend):
    matrix = _binary_task().to_sparse()
    spec = FactorGraphSpec(matrix.num_lfs)
    plan = SamplerPlan.compile(spec, matrix.storage)
    assert plan.num_colors == 1
    assert plan.independent is None  # the no-gather fast path
    assert plan.correlated_positions is None
    assert plan.max_color_block == 0


def test_plan_compile_dense_equals_sparse(backend):
    matrix = _binary_task()
    spec = FactorGraphSpec(matrix.num_lfs, [(0, 1), (1, 2), (3, 4)])
    dense_plan = SamplerPlan.compile(spec, matrix.values)
    sparse_plan = SamplerPlan.compile(spec, matrix.to_sparse().storage)
    assert np.array_equal(dense_plan.entry_rows, sparse_plan.entry_rows)
    assert np.array_equal(dense_plan.entry_cols, sparse_plan.entry_cols)
    assert np.array_equal(dense_plan.entry_values, sparse_plan.entry_values)
    assert np.array_equal(dense_plan.colors, sparse_plan.colors)
    assert len(dense_plan.color_updates) == len(sparse_plan.color_updates)
    for d, s in zip(dense_plan.color_updates, sparse_plan.color_updates):
        for field in ("positions", "rows", "local", "partners", "weight_indices"):
            assert np.array_equal(getattr(d, field), getattr(s, field)), field


def test_plan_select_rows_matches_fresh_compile(backend):
    matrix = _binary_task(num_points=300).to_sparse()
    spec = FactorGraphSpec(matrix.num_lfs, [(0, 1), (2, 3), (1, 4)])
    plan = SamplerPlan.compile(spec, matrix.storage)
    rows = np.random.default_rng(3).permutation(300)[:77]
    derived = plan.select_rows(rows)
    batch = matrix.storage.select_rows(rows)
    assert np.array_equal(derived.scatter_dense(derived.entry_values), batch.to_dense())
    fresh = SamplerPlan.compile(spec, batch)

    def canonical_entries(p):
        return set(zip(p.entry_rows.tolist(), p.entry_cols.tolist(), p.entry_values.tolist()))

    def canonical_alignments(p):
        # Each alignment triple as ((self row, self col), (partner row,
        # partner col), weight index) — entry order within a column is a
        # plan-internal detail (the derived plan keeps the parent's CSC
        # filtering order, a fresh compile re-sorts by row).
        triples = set()
        for update in p.color_updates:
            self_abs = update.positions[update.local]
            for s, q, w in zip(self_abs, update.partners, update.weight_indices):
                triples.add(
                    (
                        (int(p.entry_rows[s]), int(p.entry_cols[s])),
                        (int(p.entry_rows[q]), int(p.entry_cols[q])),
                        int(w),
                    )
                )
        return triples

    assert canonical_entries(derived) == canonical_entries(fresh)
    assert canonical_alignments(derived) == canonical_alignments(fresh)
    assert derived.num_colors == fresh.num_colors


def test_kernel_selector_validation():
    assert resolve_kernel("auto") == "vectorized"
    assert resolve_kernel("reference") == "reference"
    with pytest.raises(LabelModelError):
        resolve_kernel("numba")
    with pytest.raises(LabelModelError):
        GibbsSampler(FactorGraphSpec(3), kernel="bogus")
    with pytest.raises(LabelModelError):
        GenerativeModel(gibbs_kernel="bogus")


def test_workspace_accommodates_derived_plans(backend):
    matrix = _binary_task(num_points=300).to_sparse()
    spec = FactorGraphSpec(matrix.num_lfs, [(0, 1)])
    plan = SamplerPlan.compile(spec, matrix.storage)
    workspace = SamplerWorkspace(plan)
    sub = plan.select_rows(np.arange(50))
    assert workspace.accommodates(plan)
    assert workspace.accommodates(sub)
    small_workspace = SamplerWorkspace(sub)
    assert not small_workspace.accommodates(plan)
    with pytest.raises(LabelModelError):
        run_joint_chain(plan, small_workspace, np.random.default_rng(0), spec.initial_weights())


# --------------------------------------------------- shared sparse primitives
def test_intersect_sorted_matches_intersect1d():
    rng = np.random.default_rng(0)
    for _ in range(25):
        a = np.unique(rng.integers(0, 60, size=rng.integers(0, 40)))
        b = np.unique(rng.integers(0, 60, size=rng.integers(0, 40)))
        expected_vals, expected_a, expected_b = np.intersect1d(
            a, b, assume_unique=True, return_indices=True
        )
        in_a, in_b = intersect_sorted(a, b)
        assert np.array_equal(in_a, expected_a)
        assert np.array_equal(in_b, expected_b)
        if in_a.size:
            assert np.array_equal(a[in_a], expected_vals)


def test_ranges_gather_concatenates_column_slices():
    starts = np.array([5, 0, 9])
    counts = np.array([2, 3, 0])
    expected = np.array([5, 6, 0, 1, 2])
    assert np.array_equal(ranges_gather(starts, counts), expected)
    assert ranges_gather(np.array([]), np.array([])).size == 0


# -------------------------------------------- deterministic paths, bit-identical
def test_label_posteriors_bit_identical_between_kernels(backend):
    for matrix in (_binary_task(), _categorical_task()):
        spec = FactorGraphSpec(matrix.num_lfs, cardinality=matrix.cardinality)
        weights = spec.initial_weights()
        for storage in (matrix.values, matrix.to_sparse().storage):
            reference = GibbsSampler(spec, seed=0, kernel="reference").label_posteriors(
                weights, storage
            )
            vectorized = GibbsSampler(spec, seed=0, kernel="vectorized").label_posteriors(
                weights, storage
            )
            assert np.abs(reference - vectorized).max() <= 1e-12


def test_em_deterministic_outputs_bit_identical_between_kernels(backend):
    for matrix in (_binary_task(), _categorical_task()):
        for storage in (matrix, matrix.to_sparse()):
            reference = GenerativeModel(epochs=8, seed=0, gibbs_kernel="reference").fit(
                storage, correlations=[(0, 1)]
            )
            vectorized = GenerativeModel(epochs=8, seed=0, gibbs_kernel="vectorized").fit(
                storage, correlations=[(0, 1)]
            )
            assert np.abs(reference.weights - vectorized.weights).max() <= 1e-12
            assert (
                np.abs(
                    reference.predict_proba(storage) - vectorized.predict_proba(storage)
                ).max()
                <= 1e-12
            )


# ----------------------------------------------------------------- seed stability
def test_reference_kernel_seed_stable(backend):
    matrix = _binary_task()
    spec = FactorGraphSpec(matrix.num_lfs, [(0, 1)])
    weights = spec.initial_weights()
    weights[spec.layout.correlation_slice] = 0.6
    for storage in (matrix.values, matrix.to_sparse().storage):
        first = GibbsSampler(spec, seed=42, kernel="reference").sample_joint(
            weights, storage, sweeps=3
        )
        second = GibbsSampler(spec, seed=42, kernel="reference").sample_joint(
            weights, storage, sweeps=3
        )
        first_matrix = first[0].to_dense() if hasattr(first[0], "to_dense") else first[0]
        second_matrix = (
            second[0].to_dense() if hasattr(second[0], "to_dense") else second[0]
        )
        assert np.array_equal(first_matrix, second_matrix)
        assert np.array_equal(first[1], second[1])
    # Reference CD fits are seed-stable end to end.
    first_fit = GenerativeModel(method="cd", epochs=2, seed=7, gibbs_kernel="reference").fit(
        matrix
    )
    second_fit = GenerativeModel(method="cd", epochs=2, seed=7, gibbs_kernel="reference").fit(
        matrix
    )
    assert np.array_equal(first_fit.weights, second_fit.weights)


def test_vectorized_kernel_dense_sparse_identical_draws(backend):
    for matrix, pairs in (
        (_binary_task(), [(0, 1), (2, 3)]),
        (_categorical_task(), [(0, 1)]),
    ):
        spec = FactorGraphSpec(
            matrix.num_lfs, pairs, cardinality=matrix.cardinality
        )
        weights = spec.initial_weights()
        weights[spec.layout.correlation_slice] = 0.5
        dense_sample, dense_y = GibbsSampler(spec, seed=5).sample_joint(
            weights, matrix.values, sweeps=3
        )
        sparse_sample, sparse_y = GibbsSampler(spec, seed=5).sample_joint(
            weights, matrix.to_sparse().storage, sweeps=3
        )
        assert np.array_equal(dense_sample, sparse_sample.to_dense())
        assert np.array_equal(dense_y, sparse_y)
        # The abstention pattern is held fixed.
        assert np.array_equal(dense_sample != 0, matrix.values != 0)


# ------------------------------------------------------- distributional checks
def _match_rates(kernel, spec, storage, weights, y, repetitions, sweeps, seed):
    sampler = GibbsSampler(spec, seed=seed, kernel=kernel)
    dense = storage.to_dense() if isinstance(storage, SparseLabelMatrix) else storage
    mask = dense != 0
    totals = np.zeros(dense.shape)
    for _ in range(repetitions):
        sample = sampler.sample_lf_outputs(weights, storage, y, sweeps=sweeps)
        if isinstance(sample, SparseLabelMatrix):
            sample = sample.to_dense()
        totals += (sample == y[:, None]) & mask
    return totals[mask] / repetitions


@pytest.mark.parametrize("cardinality", [2, 3])
@pytest.mark.parametrize("storage_kind", ["dense", "sparse"])
def test_vectorized_matches_exact_independent_conditionals(
    backend, cardinality, storage_kind
):
    """No correlations: the entry conditional is closed-form, so the empirical
    match rate of every entry must sit on q_j = e^{w_j} / (e^{w_j} + k - 1)."""
    if cardinality == 2:
        matrix = _binary_task(num_points=60, num_lfs=4, propensity=0.7)
        y = np.where(np.random.default_rng(1).random(60) < 0.5, 1, -1)
    else:
        matrix = _categorical_task(num_points=60, num_lfs=4, propensity=0.7)
        y = np.random.default_rng(1).integers(1, cardinality + 1, size=60)
    storage = matrix.values if storage_kind == "dense" else matrix.to_sparse().storage
    spec = FactorGraphSpec(matrix.num_lfs, cardinality=cardinality)
    weights = spec.initial_weights()
    accuracy = weights[spec.layout.accuracy_slice]
    expected_q = 1.0 / (1.0 + (cardinality - 1) * np.exp(-accuracy))

    repetitions = 900
    rates = _match_rates("vectorized", spec, storage, weights, y, repetitions, 1, seed=0)
    rates_dense_layout = np.zeros(matrix.values.shape)
    rates_dense_layout[matrix.values != 0] = rates
    tolerance = 5.0 * np.sqrt(0.25 / repetitions)
    for j in range(matrix.num_lfs):
        column_rates = rates_dense_layout[matrix.values[:, j] != 0, j]
        assert np.abs(column_rates - expected_q[j]).max() < tolerance, j


@pytest.mark.parametrize("cardinality", [2, 3])
def test_vectorized_matches_reference_with_correlations(backend, cardinality):
    """Correlated suites: both kernels are valid Gibbs samplers of the same
    conditional, so their long-run per-entry marginals must agree within
    Monte-Carlo tolerance (dense storage drives the dense fused path; the
    dense/sparse draw identity is covered above)."""
    if cardinality == 2:
        matrix = _binary_task(num_points=40, num_lfs=4, propensity=0.7)
        y = np.where(np.random.default_rng(1).random(40) < 0.5, 1, -1)
    else:
        matrix = _categorical_task(num_points=40, num_lfs=4, propensity=0.7)
        y = np.random.default_rng(1).integers(1, cardinality + 1, size=40)
    spec = FactorGraphSpec(matrix.num_lfs, [(0, 1), (1, 2)], cardinality=cardinality)
    weights = spec.initial_weights()
    weights[spec.layout.correlation_slice] = 0.7

    repetitions = 1200
    reference = _match_rates(
        "reference", spec, matrix.values, weights, y, repetitions, 3, seed=0
    )
    vectorized = _match_rates(
        "vectorized", spec, matrix.values, weights, y, repetitions, 3, seed=11
    )
    # Both estimates carry sqrt(p(1-p)/reps) noise; 5 sigma over the worst
    # case p = 0.5 keeps the flake rate negligible while still catching any
    # systematic conditional mismatch.
    tolerance = 5.0 * np.sqrt(0.5 / repetitions)
    assert np.abs(reference - vectorized).max() < tolerance


def test_vectorized_handles_adversarial_weights(backend):
    """Negative (adversarial) accuracy weights: the factored binary update
    must contribute w_j·sign(q−u), not |w_j|·sign(q−u) — regression test for
    a copysign that dropped the weight's sign (match probability σ(w) < ½
    pairs with a *negative* matched contribution)."""
    matrix = _binary_task(num_points=50, num_lfs=4, propensity=0.8)
    spec = FactorGraphSpec(matrix.num_lfs)
    weights = spec.initial_weights()
    weights[spec.layout.accuracy_slice] = np.array([-1.5, 1.0, 1.0, 1.0])
    repetitions = 1200

    def positive_rates(kernel, seed):
        sampler = GibbsSampler(spec, seed=seed, kernel=kernel)
        totals = np.zeros(matrix.num_candidates)
        for _ in range(repetitions):
            _, y = sampler.sample_joint(weights, matrix.values, sweeps=2)
            totals += y > 0
        return totals / repetitions

    reference = positive_rates("reference", 0)
    vectorized = positive_rates("vectorized", 9)
    assert np.abs(reference - vectorized).max() < 5.0 * np.sqrt(0.5 / repetitions)


def test_joint_chain_label_marginals_match(backend):
    """sample_joint mixes over (Λ, Y): the chains' y marginals must agree."""
    matrix = _binary_task(num_points=50, num_lfs=5, propensity=0.6)
    spec = FactorGraphSpec(matrix.num_lfs, [(0, 1)])
    weights = spec.initial_weights()
    weights[spec.layout.correlation_slice] = 0.5
    repetitions = 1200

    def positive_rates(kernel, seed):
        sampler = GibbsSampler(spec, seed=seed, kernel=kernel)
        totals = np.zeros(matrix.num_candidates)
        for _ in range(repetitions):
            _, y = sampler.sample_joint(weights, matrix.values, sweeps=2)
            totals += y > 0
        return totals / repetitions

    reference = positive_rates("reference", 0)
    vectorized = positive_rates("vectorized", 9)
    assert np.abs(reference - vectorized).max() < 5.0 * np.sqrt(0.5 / repetitions)


# ------------------------------------------------------------------ CD training
def test_cd_uses_one_plan_per_fit_and_learns(backend):
    matrix = _binary_task(num_points=400, num_lfs=6, propensity=0.4)
    gold = generate_label_matrix(
        num_points=400, num_lfs=6, propensity=0.4, seed=0
    ).gold_labels
    compiles = 0
    original = SamplerPlan.compile.__func__

    def counting_compile(cls, spec, label_matrix):
        nonlocal compiles
        compiles += 1
        return original(cls, spec, label_matrix)

    try:
        SamplerPlan.compile = classmethod(counting_compile)
        for storage in (matrix, matrix.to_sparse()):
            compiles = 0
            model = GenerativeModel(method="cd", epochs=3, seed=0).fit(
                storage, correlations=[(0, 1)]
            )
            assert compiles == 1, "plan must be compiled once per fit"
            assert model.score(storage, gold) > 0.6
    finally:
        SamplerPlan.compile = classmethod(original)


def test_cd_kernels_agree_statistically(backend):
    """Both kernels drive CD to comparable fits (same estimator, different
    valid sampler) — guards against a vectorized chain that runs but samples
    from the wrong distribution."""
    data = generate_label_matrix(num_points=500, num_lfs=8, propensity=0.5, seed=3)
    scores = {}
    for kernel in ("reference", "vectorized"):
        model = GenerativeModel(method="cd", epochs=4, seed=0, gibbs_kernel=kernel).fit(
            data.label_matrix
        )
        scores[kernel] = model.score(data.label_matrix, data.gold_labels)
    assert scores["vectorized"] > 0.7
    assert abs(scores["reference"] - scores["vectorized"]) < 0.1, scores
