"""Unit tests for the labeling-function interface layer."""

import numpy as np
import pytest

from repro.context.candidates import Candidate, SentenceView, SpanView
from repro.exceptions import LabelingError
from repro.labeling import (
    LabelingFunction,
    LabelMatrix,
    LFAnalysis,
    LFApplier,
    dictionary_lf,
    labeling_function,
    lf_search,
    pattern_lf,
    weak_classifier_lf,
)
from repro.labeling.generators import CrowdWorkerLFGenerator, OntologyLFGenerator
from repro.types import ABSTAIN, NEGATIVE, POSITIVE


def make_candidate(words, start1=0, end1=1, start2=None, end2=None, uid=0):
    start2 = len(words) - 1 if start2 is None else start2
    end2 = len(words) if end2 is None else end2
    return Candidate(
        uid=uid,
        span1=SpanView(words[start1], start1, end1, canonical_id="c1"),
        span2=SpanView(words[start2], start2, end2, canonical_id="d1"),
        sentence=SentenceView(words=list(words), text=" ".join(words)),
    )


def test_decorator_normalizes_bool_and_none():
    @labeling_function()
    def lf(x):
        return True if "causes" in x.sentence.words else None

    assert lf(make_candidate(["a", "causes", "b"])) == POSITIVE
    assert lf(make_candidate(["a", "treats", "b"])) == ABSTAIN


def test_invalid_return_value_raises():
    lf = LabelingFunction("bad", lambda x: 2)
    with pytest.raises(LabelingError):
        lf(make_candidate(["a", "b"]))


def test_lf_exception_is_wrapped():
    lf = LabelingFunction("boom", lambda x: 1 / 0)
    with pytest.raises(LabelingError):
        lf(make_candidate(["a", "b"]))


def test_pattern_lf_between_scope():
    lf = pattern_lf("causes", label=POSITIVE)
    assert lf(make_candidate(["mag", "causes", "pre"])) == POSITIVE
    assert lf(make_candidate(["mag", "treats", "pre"])) == ABSTAIN


def test_lf_search_direction():
    lf = lf_search(r"causes", label=POSITIVE)
    forward = make_candidate(["mag", "causes", "pre"])
    assert lf(forward) == POSITIVE
    reverse = Candidate(
        uid=1,
        span1=SpanView("pre", 2, 3),
        span2=SpanView("mag", 0, 1),
        sentence=SentenceView(words=["mag", "causes", "pre"], text=""),
    )
    assert lf(reverse) == NEGATIVE


def test_dictionary_lf_uses_canonical_ids():
    lf = dictionary_lf([("c1", "d1")], label=POSITIVE)
    assert lf(make_candidate(["a", "b", "c"])) == POSITIVE
    lf_other = dictionary_lf([("c9", "d9")], label=POSITIVE)
    assert lf_other(make_candidate(["a", "b", "c"])) == ABSTAIN


def test_weak_classifier_lf_thresholds():
    lf = weak_classifier_lf(lambda c: 0.9)
    assert lf(make_candidate(["a", "b"])) == POSITIVE
    lf_low = weak_classifier_lf(lambda c: 0.1)
    assert lf_low(make_candidate(["a", "b"])) == NEGATIVE
    lf_mid = weak_classifier_lf(lambda c: 0.5)
    assert lf_mid(make_candidate(["a", "b"])) == ABSTAIN


def test_ontology_generator_creates_one_lf_per_subset():
    generator = OntologyLFGenerator(
        "kb", {"causes": [("c1", "d1")], "treats": [("c2", "d2")]},
        {"causes": True, "treats": False},
    )
    lfs = generator.generate()
    assert len(lfs) == 2
    assert {lf(make_candidate(["a", "b"])) for lf in lfs} == {POSITIVE, ABSTAIN}


def test_crowd_generator_votes_and_abstains():
    generator = CrowdWorkerLFGenerator({"w1": {0: 1}, "w2": {1: -1}})
    lfs = generator.generate()
    candidate0 = make_candidate(["a", "b"], uid=0)
    assert [lf(candidate0) for lf in lfs] == [1, 0]


def test_applier_shapes_and_report():
    lfs = [pattern_lf("causes", label=POSITIVE), pattern_lf("treats", label=NEGATIVE)]
    candidates = [
        make_candidate(["mag", "causes", "pre"]),
        make_candidate(["mag", "treats", "pre"]),
        make_candidate(["mag", "and", "pre"]),
    ]
    matrix = LFApplier(lfs).apply(candidates)
    assert matrix.shape == (3, 2)
    assert matrix.values[0, 0] == POSITIVE
    assert matrix.values[1, 1] == NEGATIVE
    assert matrix.values[2].tolist() == [0, 0]


def test_applier_rejects_duplicate_names():
    lf = pattern_lf("causes", name="dup")
    with pytest.raises(LabelingError):
        LFApplier([lf, pattern_lf("treats", name="dup")])


def test_applier_fault_tolerant_records_errors():
    bad = LabelingFunction("bad", lambda x: {})
    applier = LFApplier([bad], fault_tolerant=True)
    matrix = applier.apply([make_candidate(["a", "b"])])
    assert matrix.values[0, 0] == ABSTAIN
    assert applier.last_report.errors["bad"] == 1


class _RawKeyErrorLF:
    """A duck-typed LF that raises a raw KeyError (no LabelingError wrapping)."""

    name = "raw_keyerror"
    cardinality = 2

    def __call__(self, candidate):
        return {}["missing"]


def test_applier_fault_tolerant_catches_arbitrary_exceptions():
    # Regression: fault_tolerant only caught LabelingError, so a user LF
    # raising KeyError/AttributeError aborted the whole run.
    good = pattern_lf("causes", label=POSITIVE)
    applier = LFApplier([_RawKeyErrorLF(), good], fault_tolerant=True)
    candidates = [make_candidate(["mag", "causes", "pre"]), make_candidate(["a", "b"])]
    matrix = applier.apply(candidates)
    assert matrix.values[:, 0].tolist() == [ABSTAIN, ABSTAIN]
    assert matrix.values[0, 1] == POSITIVE
    assert applier.last_report.errors["raw_keyerror"] == 2
    assert applier.last_report.num_errors == 2


def test_applier_not_fault_tolerant_reraises_arbitrary_exceptions():
    applier = LFApplier([_RawKeyErrorLF()], fault_tolerant=False)
    with pytest.raises(KeyError):
        applier.apply([make_candidate(["a", "b"])])


def test_applier_sparse_mode_matches_dense():
    lfs = [
        pattern_lf("causes", label=POSITIVE),
        pattern_lf("treats", label=NEGATIVE),
        pattern_lf("nowhere", label=POSITIVE),
    ]
    candidates = [
        make_candidate(["mag", "causes", "pre"]),
        make_candidate(["mag", "treats", "pre"]),
        make_candidate(["mag", "and", "pre"]),
    ]
    dense = LFApplier(lfs).apply(candidates)
    sparse = LFApplier(lfs).apply(candidates, sparse=True)
    assert sparse.is_sparse
    assert np.array_equal(sparse.values, dense.values)
    assert sparse.lf_names == dense.lf_names


def test_label_matrix_statistics():
    matrix = LabelMatrix(np.array([[1, 0], [-1, 1], [0, 0]]))
    assert matrix.label_density() == pytest.approx(1.0)
    assert matrix.coverage() == pytest.approx(2 / 3)
    assert matrix.vote_counts(1).tolist() == [1, 1, 0]
    assert matrix.lf_polarity() == [[-1, 1], [1]]


def test_lf_analysis_summary_and_accuracy():
    matrix = LabelMatrix(np.array([[1, 1], [1, -1], [0, -1], [0, 0]]), lf_names=["a", "b"])
    analysis = LFAnalysis(matrix)
    gold = np.array([1, 1, -1, -1])
    accuracies = analysis.lf_empirical_accuracies(gold)
    assert accuracies[0] == pytest.approx(1.0)
    assert accuracies[1] == pytest.approx(2 / 3)
    summary = analysis.summary(gold)
    assert summary[0].name == "a"
    assert 0 <= analysis.conflict_fraction() <= 1
    assert "LF" in analysis.summary_table(gold)
