"""Tests for majority vote, the generative model, Dawid-Skene, and advantage."""

import numpy as np
import pytest

from repro.datasets.synthetic import generate_label_matrix, generate_misspecification_example
from repro.exceptions import LabelModelError, NotFittedError
from repro.labelmodel import (
    GenerativeModel,
    MajorityVoter,
    WeightedMajorityVoter,
    estimate_advantage_bound,
    modeling_advantage,
    optimal_advantage,
)
from repro.labelmodel.dawid_skene import DawidSkeneModel
from repro.labelmodel.majority import MultiClassMajorityVoter


def test_majority_voter_basic():
    matrix = np.array([[1, 1, 0], [-1, 1, -1], [0, 0, 0]])
    voter = MajorityVoter()
    assert voter.predict(matrix, tie_break=0).tolist() == [1, -1, 0]
    probs = voter.predict_proba(matrix)
    assert probs[0] == pytest.approx(1.0)
    assert probs[2] == pytest.approx(0.5)


def test_weighted_majority_voter_uses_weights():
    matrix = np.array([[1, -1]])
    voter = WeightedMajorityVoter([2.0, 0.5])
    assert voter.predict(matrix).tolist() == [1]
    assert voter.predict_proba(matrix)[0] > 0.5


def test_multiclass_majority_voter():
    matrix = np.array([[1, 1, 2], [0, 3, 3]])
    voter = MultiClassMajorityVoter(cardinality=3)
    assert voter.predict(matrix).tolist() == [1, 3]
    probs = voter.predict_proba(matrix)
    assert probs.shape == (2, 3)
    assert np.allclose(probs.sum(axis=1), 1.0)


def test_generative_model_recovers_accuracy_ordering():
    data = generate_label_matrix(
        num_points=800, num_lfs=6, accuracy=[0.9, 0.85, 0.8, 0.65, 0.6, 0.55],
        propensity=0.5, seed=3,
    )
    model = GenerativeModel(epochs=15, seed=0).fit(data.label_matrix)
    learned = model.learned_accuracies()
    assert learned[0] > learned[-1]
    corr = np.corrcoef(learned, data.lf_accuracies)[0, 1]
    assert corr > 0.5


def test_generative_model_beats_or_matches_majority_vote_on_synthetic():
    data = generate_label_matrix(
        num_points=1000, num_lfs=10, accuracy=[0.9] * 3 + [0.55] * 7, propensity=0.4, seed=1
    )
    model = GenerativeModel(epochs=15, seed=0).fit(data.label_matrix)
    mv_accuracy = float(
        (MajorityVoter().predict(data.label_matrix, tie_break=-1) == data.gold_labels).mean()
    )
    assert model.score(data.label_matrix, data.gold_labels) >= mv_accuracy - 0.01


def test_generative_model_correlations_fix_example_3_1():
    data = generate_misspecification_example(num_points=1500, seed=2)
    independent = GenerativeModel(epochs=10, seed=0).fit(data.label_matrix)
    correlated = GenerativeModel(epochs=10, seed=0).fit(
        data.label_matrix, correlations=data.correlated_pairs
    )
    assert correlated.score(data.label_matrix, data.gold_labels) > independent.score(
        data.label_matrix, data.gold_labels
    )
    # With correlations modeled, the independent block's estimated accuracy is
    # higher than the correlated (coin-flip) block's.
    accuracies = correlated.learned_accuracies()
    assert accuracies[5:].mean() > accuracies[:5].mean()


def test_generative_model_cd_method_runs():
    data = generate_label_matrix(num_points=300, num_lfs=5, propensity=0.5, seed=0)
    model = GenerativeModel(method="cd", epochs=5, seed=0).fit(data.label_matrix)
    probs = model.predict_proba(data.label_matrix)
    assert probs.shape == (300,)
    assert np.all((probs >= 0) & (probs <= 1))


def test_generative_model_validation_errors():
    with pytest.raises(LabelModelError):
        GenerativeModel(epochs=0)
    with pytest.raises(LabelModelError):
        GenerativeModel(method="bogus")
    with pytest.raises(NotFittedError):
        GenerativeModel().predict_proba(np.zeros((2, 2), dtype=int))


def test_class_balance_shifts_predictions():
    matrix = np.array([[1, 0, 0]] * 10 + [[0, -1, 0]] * 10)
    low = GenerativeModel(epochs=5, class_balance=0.1, seed=0).fit(matrix)
    high = GenerativeModel(epochs=5, class_balance=0.9, seed=0).fit(matrix)
    assert high.predict_proba(matrix).mean() > low.predict_proba(matrix).mean()


@pytest.mark.parametrize("method", ["em", "cd"])
@pytest.mark.parametrize("cardinality", [2, 3])
@pytest.mark.parametrize("sparse", [False, True])
def test_fit_twice_equals_fresh_instance(method, cardinality, sparse):
    """Refit hygiene: fit() must not leak state between calls.

    Fitting the same instance twice — including an interleaved fit on a
    *different* matrix — must reproduce a fresh instance's fit bitwise, for
    both estimators, both vocabularies, and both storages."""
    rng = np.random.default_rng(cardinality * 10 + (method == "cd"))
    if cardinality == 2:
        matrix = rng.choice([-1, 0, 1], size=(120, 5), p=[0.3, 0.4, 0.3])
        other = rng.choice([-1, 0, 1], size=(80, 5), p=[0.2, 0.5, 0.3])
    else:
        matrix = rng.integers(0, cardinality + 1, size=(120, 5))
        other = rng.integers(0, cardinality + 1, size=(80, 5))
    if sparse:
        from repro.labeling.sparse import SparseLabelMatrix

        matrix = SparseLabelMatrix.from_dense(matrix)
        other = SparseLabelMatrix.from_dense(other)

    def make():
        return GenerativeModel(
            method=method, epochs=4, cardinality=cardinality, seed=7
        )

    fresh = make().fit(matrix, correlations=((0, 1),))
    reused = make()
    reused.fit(other)  # pollute with an unrelated fit first
    reused.fit(matrix, correlations=((0, 1),))
    assert np.array_equal(reused.weights, fresh.weights)
    assert reused.class_prior_weight_ == fresh.class_prior_weight_
    if cardinality > 2:
        assert np.array_equal(reused.class_priors_, fresh.class_priors_)
    else:
        assert reused.class_priors_ is fresh.class_priors_ is None or np.array_equal(
            reused.class_priors_, fresh.class_priors_
        )
    assert reused.history == fresh.history
    assert np.array_equal(reused.predict_proba(matrix), fresh.predict_proba(matrix))
    # A third fit is a fixed point: refitting the same matrix changes nothing.
    reused.fit(matrix, correlations=((0, 1),))
    assert np.array_equal(reused.weights, fresh.weights)


def test_dawid_skene_recovers_worker_quality():
    rng = np.random.default_rng(0)
    truth = rng.integers(1, 4, size=400)
    accuracies = [0.9, 0.85, 0.6, 0.4]
    matrix = np.zeros((400, 4), dtype=int)
    for j, accuracy in enumerate(accuracies):
        correct = rng.random(400) < accuracy
        wrong = np.where(truth == 1, 2, 1)
        matrix[:, j] = np.where(correct, truth, wrong)
    model = DawidSkeneModel(cardinality=3, seed=0).fit(matrix)
    predictions = model.predict()
    assert float((predictions == truth).mean()) > 0.85
    worker_acc = model.worker_accuracies()
    assert worker_acc[0] > worker_acc[3]


def test_dawid_skene_binary_recode():
    rng = np.random.default_rng(1)
    truth = rng.choice([-1, 1], size=200)
    matrix = np.zeros((200, 3), dtype=int)
    for j in range(3):
        correct = rng.random(200) < 0.8
        matrix[:, j] = np.where(correct, truth, -truth)
    model = DawidSkeneModel(cardinality=2).fit(matrix)
    assert set(np.unique(model.predict())) <= {-1, 1}
    assert float((model.predict() == truth).mean()) > 0.8


def test_modeling_advantage_definition():
    matrix = np.array([[1, -1, -1], [1, 0, 0]])
    gold = np.array([1, 1])
    weights = np.array([5.0, 0.1, 0.1])
    advantage = modeling_advantage(matrix, gold, weights)
    assert advantage == pytest.approx(0.5)  # first row flips correctly, second is unchanged
    assert optimal_advantage(matrix, gold, [0.99, 0.55, 0.55]) == pytest.approx(0.5)


def test_advantage_bound_upper_bounds_zero_disagreement():
    matrix = np.array([[1, 1], [-1, -1]])
    assert estimate_advantage_bound(matrix) == pytest.approx(0.0)


def test_advantage_bound_positive_with_conflicts():
    matrix = np.array([[1, -1, 0], [-1, 1, 1]])
    assert estimate_advantage_bound(matrix) > 0.0
