"""The multi-class (cardinality k) generative-model path, end to end.

Covers the k-ary EM estimator (dense/sparse equivalence, binary
bit-compatibility, agreement with Dawid-Skene on the crowd task), the
k-ary Gibbs/CD path, the multi-class scorer, the Dawid-Skene held-out
recoding bugfix, the single-pass multi-class majority voter, and the
pipeline running cardinality-3 and crowd tasks without a Dawid-Skene
fallback.
"""

import numpy as np
import pytest

import repro.labeling.sparse as sparse_mod
from repro.datasets import load_task
from repro.datasets.synthetic import (
    build_multiclass_task,
    generate_label_matrix,
    generate_multiclass_label_matrix,
)
from repro.evaluation.scorer import BinaryScorer, MultiClassScorer
from repro.exceptions import LabelModelError
from repro.labeling import LabelMatrix
from repro.labeling.sparse import class_vote_counts
from repro.labelmodel import (
    DawidSkeneModel,
    GenerativeModel,
    MultiClassMajorityVoter,
    StructureLearner,
)
from repro.labelmodel.gibbs import GibbsSampler
from repro.pipeline import PipelineConfig, SnorkelPipeline


@pytest.fixture(params=["scipy", "numpy-fallback"])
def backend(request, monkeypatch):
    """Run sparse-sensitive tests under both storage backends."""
    if request.param == "numpy-fallback":
        monkeypatch.setattr(sparse_mod, "FORCE_NUMPY_FALLBACK", True)
    elif not sparse_mod.HAVE_SCIPY:
        pytest.skip("scipy not installed")
    return request.param


# ----------------------------------------------------------- shared helper
def test_class_vote_counts_single_pass_matches_per_class_scan():
    data = generate_multiclass_label_matrix(num_points=80, num_lfs=6, cardinality=4, seed=0)
    matrix = data.label_matrix.values
    counts = class_vote_counts(matrix, 4)
    for klass in range(1, 5):
        assert np.array_equal(counts[:, klass - 1], (matrix == klass).sum(axis=1))
    weights = np.linspace(0.5, 2.0, 6)
    weighted = class_vote_counts(matrix, 4, column_weights=weights)
    for klass in range(1, 5):
        assert np.allclose(weighted[:, klass - 1], ((matrix == klass) * weights).sum(axis=1))


def test_class_vote_counts_rejects_signed_labels():
    with pytest.raises(Exception):
        class_vote_counts(np.array([[1, -1], [0, 1]]), 2)


def test_multiclass_majority_voter_matches_counts(backend):
    data = generate_multiclass_label_matrix(
        num_points=60, num_lfs=5, cardinality=3, propensity=0.5, seed=1
    )
    dense = data.label_matrix
    sparse = dense.to_sparse()
    voter = MultiClassMajorityVoter(cardinality=3)
    probs = voter.predict_proba(dense)
    assert probs.shape == (60, 3)
    assert np.allclose(probs.sum(axis=1), 1.0)
    assert np.allclose(probs, voter.predict_proba(sparse))


# --------------------------------------------------------------- EM paths
def test_em_dense_sparse_equivalence_k3(backend):
    data = generate_multiclass_label_matrix(
        num_points=400, num_lfs=10, cardinality=3, propensity=0.3, seed=2
    )
    dense = data.label_matrix
    sparse = dense.to_sparse()
    dense_model = GenerativeModel(epochs=15, seed=0).fit(dense)
    sparse_model = GenerativeModel(epochs=15, seed=0).fit(sparse)
    assert np.abs(dense_model.weights - sparse_model.weights).max() < 1e-10
    dense_probs = dense_model.predict_proba(dense)
    sparse_probs = sparse_model.predict_proba(sparse)
    assert dense_probs.shape == (400, 3)
    assert np.abs(dense_probs - sparse_probs).max() < 1e-10
    assert np.allclose(dense_model.class_priors_, sparse_model.class_priors_)


def test_em_dense_sparse_equivalence_with_correlations(backend):
    data = generate_multiclass_label_matrix(
        num_points=300, num_lfs=6, cardinality=3, propensity=0.5, seed=3
    )
    dense = data.label_matrix
    sparse = dense.to_sparse()
    pairs = [(0, 1), (2, 3)]
    dense_model = GenerativeModel(epochs=10, seed=0).fit(dense, correlations=pairs)
    sparse_model = GenerativeModel(epochs=10, seed=0).fit(sparse, correlations=pairs)
    assert np.abs(dense_model.weights - sparse_model.weights).max() < 1e-10
    assert (
        np.abs(dense_model.predict_proba(dense) - sparse_model.predict_proba(sparse)).max()
        < 1e-10
    )


def test_binary_bit_compatibility_and_k2_consistency():
    data = generate_label_matrix(num_points=500, num_lfs=8, propensity=0.3, seed=4)
    baseline = GenerativeModel(epochs=12, seed=0).fit(data.label_matrix)
    explicit = GenerativeModel(epochs=12, seed=0, cardinality=2).fit(data.label_matrix)
    # The binary path is untouched by the k-ary extension: bit-identical.
    assert np.array_equal(baseline.weights, explicit.weights)
    assert np.array_equal(
        baseline.predict_proba(data.label_matrix), explicit.predict_proba(data.label_matrix)
    )

    # The k-ary posterior formula evaluated at k=2 on the recoded matrix
    # {1, 2} reproduces the signed binary posterior exactly (same symmetric
    # model, different encoding) — the identity that makes the categorical
    # extension a strict generalization.
    signed = data.label_matrix.values
    recoded = np.zeros_like(signed)
    recoded[signed == -1] = 1
    recoded[signed == 1] = 2
    binary_probs = baseline.predict_proba(data.label_matrix)
    accuracies = baseline.learned_accuracies()
    weights_k = 0.5 * np.log(accuracies / (1.0 - accuracies))
    scores = np.stack(
        [((recoded == 1) * weights_k).sum(axis=1), ((recoded == 2) * weights_k).sum(axis=1)],
        axis=1,
    )
    shifted = 2.0 * scores
    softmaxed = np.exp(shifted - shifted.max(axis=1, keepdims=True))
    softmaxed /= softmaxed.sum(axis=1, keepdims=True)
    covered = (signed != 0).any(axis=1)
    assert np.abs(softmaxed[covered, 1] - binary_probs[covered]).max() < 1e-10


def test_multiclass_recovers_accuracy_ordering():
    accuracies = [0.9, 0.85, 0.8, 0.6, 0.5, 0.45]
    data = generate_multiclass_label_matrix(
        num_points=1500, num_lfs=6, cardinality=3, accuracy=accuracies,
        propensity=0.5, seed=5,
    )
    model = GenerativeModel(epochs=15, seed=0).fit(data.label_matrix)
    learned = model.learned_accuracies()
    assert learned[0] > learned[-1]
    assert np.corrcoef(learned, accuracies)[0, 1] > 0.5
    assert model.score(data.label_matrix, data.gold_labels) > 0.8


def test_multiclass_supplied_class_balance_shifts_posteriors():
    matrix = np.array([[1, 0, 0]] * 5 + [[0, 0, 0]] * 5)
    lm = LabelMatrix(matrix, cardinality=3)
    skewed = GenerativeModel(epochs=5, class_balance=[0.1, 0.1, 0.8], seed=0).fit(lm)
    probs = skewed.predict_proba(lm)
    # Uncovered rows follow the supplied prior; covered rows are shifted by it.
    assert probs[5, 2] > probs[5, 0]
    uniform = GenerativeModel(epochs=5, seed=0).fit(lm)
    assert skewed.predict_proba(lm)[0, 2] > uniform.predict_proba(lm)[0, 2]
    with pytest.raises(LabelModelError):
        GenerativeModel(epochs=5, class_balance=0.4, seed=0).fit(lm)
    with pytest.raises(LabelModelError):
        GenerativeModel(epochs=5, class_balance=[0.5, 0.5], seed=0).fit(lm)


def test_binary_path_rejects_categorical_values():
    with pytest.raises(LabelModelError):
        GenerativeModel(epochs=3).fit(np.array([[1, 3], [2, 0]]))


# --------------------------------------------------------------- CD + Gibbs
def test_cd_method_multiclass_runs(backend):
    data = generate_multiclass_label_matrix(
        num_points=200, num_lfs=5, cardinality=3, propensity=0.5, seed=6
    )
    dense = data.label_matrix
    model = GenerativeModel(method="cd", epochs=3, seed=0).fit(dense)
    probs = model.predict_proba(dense)
    assert probs.shape == (200, 3)
    assert np.allclose(probs.sum(axis=1), 1.0)
    assert model.score(dense, data.gold_labels) > 1.0 / 3
    sparse_model = GenerativeModel(method="cd", epochs=3, seed=0).fit(dense.to_sparse())
    assert sparse_model.predict_proba(dense.to_sparse()).shape == (200, 3)


def test_gibbs_sampler_multiclass_label_and_joint(backend):
    data = generate_multiclass_label_matrix(
        num_points=150, num_lfs=5, cardinality=4, propensity=0.5, seed=7
    )
    dense = data.label_matrix
    sparse = dense.to_sparse()
    model = GenerativeModel(epochs=5, seed=0).fit(dense)
    sampler = GibbsSampler(model.spec, seed=0)
    posteriors = sampler.label_posteriors(model.weights, dense.values)
    assert posteriors.shape == (150, 4)
    assert np.allclose(posteriors.sum(axis=1), 1.0)
    assert np.allclose(posteriors, sampler.label_posteriors(model.weights, sparse.storage))
    labels = sampler.sample_labels(model.weights, dense.values)
    assert set(np.unique(labels)) <= {1, 2, 3, 4}
    sampled, y = GibbsSampler(model.spec, seed=0).sample_joint(
        model.weights, dense.values, sweeps=2
    )
    # The abstention pattern is held fixed; values stay in 1..k.
    assert np.array_equal(sampled != 0, dense.values != 0)
    assert sampled[sampled != 0].min() >= 1 and sampled.max() <= 4
    sampled_sparse, y_sparse = GibbsSampler(model.spec, seed=0).sample_joint(
        model.weights, sparse.storage, sweeps=2
    )
    assert np.array_equal(sampled_sparse.to_dense() != 0, dense.values != 0)
    assert set(np.unique(y_sparse)) <= {1, 2, 3, 4}


# -------------------------------------------------------- structure learning
def test_structure_learner_multiclass_finds_planted_copy(backend):
    rng = np.random.default_rng(0)
    truth = rng.integers(1, 4, size=600)
    matrix = np.zeros((600, 5), dtype=np.int64)
    for j in range(4):
        votes = rng.random(600) < 0.7
        correct = rng.random(600) < 0.75
        wrong = ((truth + rng.integers(1, 3, size=600) - 1) % 3) + 1
        matrix[votes, j] = np.where(correct, truth, wrong)[votes]
    # Column 4 near-copies column 0 wherever column 0 votes.
    copies = (matrix[:, 0] != 0) & (rng.random(600) < 0.95)
    matrix[copies, 4] = matrix[copies, 0]
    dense_learner = StructureLearner(seed=0).fit(LabelMatrix(matrix, cardinality=3))
    scores = dense_learner.pair_scores()
    planted = scores[(0, 4)]
    others = [value for pair, value in scores.items() if pair != (0, 4)]
    assert planted > max(others)
    sparse_learner = StructureLearner(seed=0).fit(
        LabelMatrix(matrix, cardinality=3).to_sparse()
    )
    assert np.allclose(
        dense_learner.dependency_weights_, sparse_learner.dependency_weights_, atol=1e-8
    )


# ------------------------------------------------------------- Dawid-Skene
def test_dawid_skene_heldout_recode_consistency():
    rng = np.random.default_rng(2)
    truth = rng.choice([-1, 1], size=300)
    matrix = np.zeros((300, 4), dtype=np.int64)
    for j in range(4):
        correct = rng.random(300) < 0.85
        matrix[:, j] = np.where(correct, truth, -truth)
    model = DawidSkeneModel(cardinality=2, seed=0).fit(matrix[:200])
    # Regression: a held-out slice containing only abstains and positives
    # used to be read as categorical (classes {0, 1}), misindexing class 1
    # onto the *negative* confusion column and flipping the decode.
    heldout = matrix[200:].copy()
    heldout[heldout == -1] = 0  # strip the negatives: only {0, +1} remain
    probs = model.predict_proba(heldout)
    assert probs.shape == (100, 2)
    predictions = model.predict(heldout)
    assert set(np.unique(predictions)) <= {-1, 1}
    positive_rows = (heldout == 1).any(axis=1)
    assert (predictions[positive_rows] == 1).mean() > 0.9
    # Signed held-out matrices keep scoring under the fit-time encoding too.
    full_predictions = model.predict(matrix[200:])
    assert (full_predictions == truth[200:]).mean() > 0.9
    # A matrix outside the fitted vocabulary fails loudly.
    with pytest.raises(LabelModelError):
        model.predict_proba(np.array([[3, 0, 0, 0]]))


def test_generative_model_agrees_with_dawid_skene_on_crowd():
    task = load_task("crowd", scale=0.4, seed=0)
    from repro.labeling.applier import LFApplier

    matrix = LFApplier(task.lfs).apply(task.split_candidates("train"))
    generative = GenerativeModel(epochs=20, seed=0).fit(matrix)
    dawid_skene = DawidSkeneModel(cardinality=task.cardinality, seed=0).fit(matrix)
    generative_labels = generative.predict(matrix)
    ds_labels = dawid_skene.predict()
    assert (generative_labels == ds_labels).mean() > 0.9
    gold = task.split_gold("train")
    assert (generative_labels == gold).mean() > 0.8
    assert (ds_labels == gold).mean() > 0.8


# ------------------------------------------------------------------ scorer
def test_binary_scorer_rejects_multiclass_labels():
    with pytest.raises(ValueError):
        BinaryScorer().score([1, 2, 3], [1, 2, 3])
    with pytest.raises(ValueError):
        BinaryScorer().score([1, -1], [1, 2])
    with pytest.raises(ValueError):
        BinaryScorer().score_probabilities([1, -1], np.array([[0.4, 0.6], [0.7, 0.3]]))
    # Abstain predictions stay legal (counted as negative, the paper's rule).
    report = BinaryScorer().score([1, -1, 1], [1, 0, -1])
    assert report.tp == 1 and report.tn == 1 and report.fn == 1


def test_multiclass_scorer_accuracy_and_macro_f1():
    gold = [1, 1, 2, 2, 3, 3]
    predicted = [1, 2, 2, 2, 3, 1]
    scorer = MultiClassScorer(cardinality=3)
    report = scorer.score(gold, predicted)
    assert report.accuracy == pytest.approx(4 / 6)
    # Per-class F1: class1 p=1/2 r=1/2; class2 p=2/3 r=1; class3 p=1 r=1/2.
    expected_f1 = np.mean([0.5, 0.8, 2 / 3])
    assert report.f1 == pytest.approx(expected_f1)
    assert report.confusion.sum() == 6
    assert sorted(report.incorrect_indices) == [1, 5]
    probs = np.eye(3)[np.array(predicted) - 1]
    assert scorer.score_probabilities(gold, probs).accuracy == report.accuracy
    with pytest.raises(ValueError):
        scorer.score([0, 1], [1, 1])  # abstain is not a gold class
    with pytest.raises(ValueError):
        scorer.score_probabilities(gold, np.zeros((6, 2)))


# ---------------------------------------------------------------- pipeline
def test_pipeline_multiclass_synthetic_end_to_end(backend):
    task = build_multiclass_task(num_points=250, num_lfs=10, cardinality=3, seed=0)
    config = PipelineConfig(generative_epochs=10, discriminative_epochs=15, seed=0)
    result = SnorkelPipeline(config=config).run(task)
    # Trains the generative model (no Dawid-Skene fallback, no MV bailout).
    assert result.generative_model is not None
    assert result.strategy is not None and result.strategy.strategy == "GM"
    assert result.training_probs.shape == (len(task.split_candidates("train")), 3)
    assert np.allclose(result.training_probs.sum(axis=1), 1.0)
    assert result.generative_test_report.accuracy > 1.0 / 3
    assert 0.0 <= result.discriminative_test_report.f1 <= 1.0

    sparse_config = PipelineConfig(
        generative_epochs=10, discriminative_epochs=15, seed=0, sparse_labels=True
    )
    sparse_result = SnorkelPipeline(config=sparse_config).run(task)
    assert sparse_result.label_matrix.is_sparse
    assert np.allclose(sparse_result.training_probs, result.training_probs, atol=1e-10)


def test_pipeline_crowd_end_to_end_no_fallback():
    task = load_task("crowd", scale=0.25, seed=0)
    config = PipelineConfig(
        use_optimizer=False, generative_epochs=10, discriminative_epochs=10, seed=0
    )
    result = SnorkelPipeline(config=config).run(task)
    assert result.generative_model is not None
    assert result.generative_model.spec.cardinality == 5
    assert result.training_probs.shape[1] == 5
    assert result.generative_test_report.accuracy > 0.5
    assert result.discriminative_test_report.accuracy > 1.0 / 5


def test_pipeline_multiclass_force_mv_uses_plurality():
    task = build_multiclass_task(num_points=150, num_lfs=8, cardinality=3, seed=1)
    config = PipelineConfig(force_strategy="MV", discriminative_epochs=5, seed=0)
    result = SnorkelPipeline(config=config).run(task)
    assert result.generative_model is None
    assert result.training_probs.shape[1] == 3
