"""The online incremental label model: drain exactness, LF edits, serving.

The differential contract this suite pins (the seeded hypothesis fuzz at the
bottom re-checks it under randomized matrices and chunkings):

* **Drain ≡ batch** — folding any chunking of a stream and draining gives a
  model *bit-identical* to ``GenerativeModel.fit`` on the equivalent sparse
  matrix (canonical CSR makes the drain chunk-order invariant), and within
  1e-8 of the dense batch fit — for k=2 and k=3 alike.
* **Zero-update warm case** — serving again without new data returns the
  memoized batch model's posteriors bitwise, under an unchanged version.
* **All-abstain chunks are no-ops** — rows grow, statistics and version
  don't.
* **LF edits ≡ full refit** — ``add_lf``/``remove_lf`` followed by a drain
  match fitting the edited matrix from scratch bitwise, including the
  correlation-pair remap; ``StructureLearner.refit_nodes`` re-solves only
  the touched nodes yet reproduces the full fit's rows bitwise.
* **Serving discipline** — ``model_version_`` is monotone, the staleness
  bound auto-drains, and ``save``/``load`` round-trips the whole state
  (with ``retention="latest_epoch"`` keeping exactly one snapshot).
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.synthetic import generate_label_matrix, stream_text_candidates, text_vote_lfs
from repro.exceptions import LabelModelError, NotFittedError
from repro.labeling.blockstore import BlockStore
from repro.labeling.matrix import LabelMatrix
from repro.labeling.sparse import SparseLabelMatrix
from repro.labelmodel import GenerativeModel, OnlineGenerativeModel, StructureLearner
from repro.pipeline.snorkel import PipelineConfig, SnorkelPipeline


def binary_matrix(num_points=400, num_lfs=8, seed=0):
    return generate_label_matrix(
        num_points=num_points, num_lfs=num_lfs, propensity=0.4, seed=seed
    ).label_matrix.values


def categorical_matrix(num_points=300, num_lfs=6, cardinality=3, seed=0):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, cardinality + 1, size=(num_points, num_lfs))
    return matrix


def fold(dense, chunk_sizes, **kwargs):
    """Fold ``dense`` into a fresh online model as chunks of the given sizes."""
    model = OnlineGenerativeModel(epochs=10, seed=0, **kwargs)
    start = 0
    for size in chunk_sizes:
        model.update(dense[start:start + size])
        start += size
    assert start == dense.shape[0]
    return model


# -------------------------------------------------------------- drain ≡ batch
@pytest.mark.parametrize("chunk_sizes", [[400], [150, 250], [64] * 6 + [16], [1, 399]])
def test_drained_matches_batch_sparse_bitwise(chunk_sizes):
    dense = binary_matrix()
    online = fold(dense, chunk_sizes)
    drained = online.drain()
    batch = GenerativeModel(epochs=10, seed=0).fit(SparseLabelMatrix.from_dense(dense))
    assert np.array_equal(drained.weights, batch.weights)
    assert drained.class_prior_weight_ == batch.class_prior_weight_
    assert np.array_equal(drained.predict_proba(dense), batch.predict_proba(dense))


def test_drained_matches_batch_dense_within_tolerance():
    dense = binary_matrix(seed=3)
    online = fold(dense, [128, 128, 144])
    drained = online.drain()
    batch = GenerativeModel(epochs=10, seed=0).fit(dense)
    assert np.abs(drained.predict_proba(dense) - batch.predict_proba(dense)).max() <= 1e-8


def test_chunk_order_invariance_of_drain():
    dense = binary_matrix(seed=5)
    reference = fold(dense, [400]).drain()
    for sizes in ([37, 363], [200, 200], [1, 199, 200]):
        drained = fold(dense, sizes).drain()
        assert np.array_equal(drained.weights, reference.weights)
        assert drained.class_prior_weight_ == reference.class_prior_weight_


def test_drained_with_correlations_matches_batch():
    dense = binary_matrix(seed=7)
    pairs = ((0, 1), (2, 5))
    online = fold(dense, [100, 300], correlations=pairs)
    drained = online.drain()
    batch = GenerativeModel(epochs=10, seed=0).fit(
        SparseLabelMatrix.from_dense(dense), correlations=pairs
    )
    assert np.array_equal(drained.weights, batch.weights)


def test_categorical_drain_matches_batch():
    dense = categorical_matrix()
    online = fold(dense, [100, 100, 100], cardinality=3)
    drained = online.drain()
    batch = GenerativeModel(epochs=10, seed=0, cardinality=3).fit(
        SparseLabelMatrix.from_dense(dense)
    )
    assert np.array_equal(drained.weights, batch.weights)
    assert np.array_equal(drained.class_priors_, batch.class_priors_)
    dense_batch = GenerativeModel(epochs=10, seed=0, cardinality=3).fit(dense)
    assert np.abs(
        drained.predict_proba(dense) - dense_batch.predict_proba(dense)
    ).max() <= 1e-8


def test_label_matrix_chunks_pin_cardinality():
    dense = categorical_matrix(seed=2)
    online = OnlineGenerativeModel(epochs=5, seed=0)
    online.update(LabelMatrix(dense, cardinality=3))
    assert online.cardinality_ == 3
    assert online.drain().predict_proba(dense).shape == (dense.shape[0], 3)


# ------------------------------------------------------------------- serving
def test_zero_update_warm_serve_is_bitwise():
    dense = binary_matrix(seed=1)
    online = fold(dense, [200, 200])
    drained = online.drain()
    version = online.model_version_
    chunks = [dense[:150], dense[150:]]
    served = list(online.serve_posteriors(chunks))
    for chunk, result in zip(chunks, served):
        assert result.model_version == version
        assert np.array_equal(result.probs, drained.predict_proba(chunk))
    # Serving twice from the memoized drain is idempotent bitwise.
    again = list(online.serve_posteriors(chunks))
    for first, second in zip(served, again):
        assert np.array_equal(first.probs, second.probs)
    assert online.model_version_ == version


def test_staleness_bound_auto_drains():
    dense = binary_matrix(num_points=200, seed=2)
    online = fold(dense, [100, 100], max_staleness=0)
    assert online.updates_since_drain_ == 2
    [served] = list(online.serve_posteriors([dense[:50]]))
    assert online.updates_since_drain_ == 0
    batch = GenerativeModel(epochs=10, seed=0).fit(SparseLabelMatrix.from_dense(dense))
    assert np.array_equal(served.probs, batch.predict_proba(dense[:50]))


def test_model_version_monotone_under_interleaving():
    dense = binary_matrix(seed=4)
    online = OnlineGenerativeModel(epochs=5, seed=0)
    versions = []
    for start in range(0, 400, 100):
        online.update(dense[start:start + 100])
        [served] = list(online.serve_posteriors([dense[:10]]))
        versions.append(served.model_version)
    online.drain()
    versions.append(online.model_version_)
    assert versions == sorted(versions)
    assert len(set(versions)) == len(versions)


def test_all_abstain_chunk_is_noop():
    dense = binary_matrix(seed=6)
    online = fold(dense, [400])
    version = online.model_version_
    accuracies = online.accuracies_.copy()
    online.update(np.zeros((50, dense.shape[1]), dtype=int))
    assert online.model_version_ == version
    assert online.num_rows_ == 450
    assert np.array_equal(online.accuracies_, accuracies)
    # The drain sees the abstain rows only as uncovered mass.
    assert online.drain().predict_proba(dense).shape == (400,)


# ------------------------------------------------------------------ LF edits
def test_add_lf_then_drain_matches_full_refit():
    dense = binary_matrix(seed=8, num_lfs=10)
    online = fold(dense[:, :8], [133, 267])
    assert online.add_lf(dense[:, 8]) == 8
    assert online.add_lf(dense[:, 9]) == 9
    drained = online.drain()
    batch = GenerativeModel(epochs=10, seed=0).fit(SparseLabelMatrix.from_dense(dense))
    assert np.array_equal(drained.weights, batch.weights)
    assert np.array_equal(drained.predict_proba(dense), batch.predict_proba(dense))


def test_remove_lf_then_drain_matches_full_refit():
    dense = binary_matrix(seed=9)
    online = fold(dense, [200, 200], correlations=((1, 5), (2, 3)))
    online.remove_lf(5)
    # The (1, 5) pair died with the LF; (2, 3) survives unshifted.
    assert online.correlations_ == [(2, 3)]
    reduced = np.delete(dense, 5, axis=1)
    drained = online.drain()
    batch = GenerativeModel(epochs=10, seed=0).fit(
        SparseLabelMatrix.from_dense(reduced), correlations=((2, 3),)
    )
    assert np.array_equal(drained.weights, batch.weights)


def test_remove_lf_shifts_correlation_indices():
    dense = binary_matrix(seed=10)
    online = fold(dense, [400], correlations=((2, 6), (4, 7)))
    online.remove_lf(3)
    assert online.correlations_ == [(2, 5), (3, 6)]


def test_relearn_structure_refits_only_new_nodes():
    dense = binary_matrix(seed=11, num_lfs=6)
    online = fold(dense[:, :5], [400])
    learner = StructureLearner(seed=0)
    online.relearn_structure(learner, threshold=0.05)
    online.add_lf(dense[:, 5])
    online.relearn_structure(learner, threshold=0.05, nodes=[5])
    full = StructureLearner(seed=0).fit(SparseLabelMatrix.from_dense(dense))
    # The appended node's regression is solved on the grown matrix and is
    # bitwise the full fit's row; older rows keep their 5-LF solutions.
    assert np.array_equal(learner.dependency_weights_[5], full.dependency_weights_[5])
    assert learner.dependency_weights_.shape == (6, 6)
    # Re-solving every node incrementally reproduces the full fit exactly.
    pairs = online.relearn_structure(learner, threshold=0.05, nodes=range(6))
    assert np.array_equal(learner.dependency_weights_, full.dependency_weights_)
    assert pairs == full.select(0.05)


# ---------------------------------------------------------------- validation
def test_online_validation_errors():
    with pytest.raises(LabelModelError):
        OnlineGenerativeModel(max_staleness=-1)
    online = OnlineGenerativeModel()
    with pytest.raises(NotFittedError):
        online.posteriors(np.zeros((2, 3), dtype=int))
    with pytest.raises(NotFittedError):
        online.drain()
    online.update(binary_matrix(num_points=50))
    with pytest.raises(LabelModelError):
        online.update(np.zeros((10, 3), dtype=int))  # LF count mismatch
    with pytest.raises(LabelModelError):
        online.update(np.full((5, 8), 3))  # out-of-vocabulary labels
    with pytest.raises(LabelModelError):
        online.add_lf(np.zeros(7, dtype=int))  # wrong length
    with pytest.raises(LabelModelError):
        online.remove_lf(8)


# ---------------------------------------------------------------- durability
def test_save_load_round_trip(tmp_path):
    dense = binary_matrix(seed=12)
    online = fold(dense, [100, 300], correlations=((0, 1),))
    with BlockStore(str(tmp_path / "store")) as store:
        online.save(store, prefix="online/label_model")
        restored = OnlineGenerativeModel.load(
            store, prefix="online/label_model", epochs=10, seed=0
        )
    assert restored.model_version_ == online.model_version_
    assert restored.correlations_ == online.correlations_
    assert np.array_equal(restored.accuracies_, online.accuracies_)
    assert np.array_equal(restored.drain().weights, online.drain().weights)
    # Post-restore folds continue identically.
    extra = binary_matrix(num_points=50, seed=13)
    online.update(extra)
    restored.update(extra)
    assert np.array_equal(restored.accuracies_, online.accuracies_)


def test_save_latest_epoch_keeps_one_snapshot(tmp_path):
    dense = binary_matrix(seed=14)
    online = OnlineGenerativeModel(epochs=5, seed=0)
    with BlockStore(str(tmp_path / "store"), retention="latest_epoch") as store:
        for start in (0, 100, 200):
            online.update(dense[start:start + 100])
            online.save(store)
        blocks = os.listdir(store.blocks_dir)
        state_blocks = [name for name in blocks if name.startswith("online")]
        assert len(state_blocks) == 1
        restored = OnlineGenerativeModel.load(store, epochs=5, seed=0)
    assert restored.num_rows_ == 300
    with pytest.raises(LabelModelError):
        OnlineGenerativeModel.load(store, prefix="missing")


# ------------------------------------------------------------------ pipeline
def test_pipeline_online_matches_batch():
    lfs = text_vote_lfs(8)
    def run(online):
        config = PipelineConfig(
            streaming=True, chunk_size=200, online=online, sparse_labels=True,
            generative_epochs=8, discriminative_epochs=3, seed=0,
        )
        pipeline = SnorkelPipeline(lfs=lfs, config=config)
        return pipeline.run_streams(
            stream_text_candidates(1000, num_lfs=8, seed=1),
            stream_text_candidates(200, num_lfs=8, seed=2),
            np.ones(200, dtype=int),
        )
    batch, online = run(False), run(True)
    assert np.array_equal(online.training_probs, batch.training_probs)


def test_pipeline_rejects_bad_retention():
    with pytest.raises(Exception):
        PipelineConfig(checkpoint_retention="bogus")


# ------------------------------------------- seeded hypothesis differential
matrix_and_split = st.integers(0, 2**32 - 1).flatmap(
    lambda seed: st.tuples(
        st.just(seed),
        st.integers(2, 3),           # cardinality
        st.integers(20, 60),         # rows
        st.integers(3, 6),           # LFs
        st.integers(1, 59),          # chunk split point (clamped below)
    )
)


@given(matrix_and_split)
@settings(max_examples=25, deadline=None)
def test_fuzz_drain_equals_batch(params):
    seed, cardinality, num_rows, num_lfs, split = params
    rng = np.random.default_rng(seed)
    if cardinality == 2:
        dense = rng.choice([-1, 0, 1], size=(num_rows, num_lfs), p=[0.25, 0.5, 0.25])
    else:
        dense = rng.choice([0, 1, 2, 3], size=(num_rows, num_lfs), p=[0.5, 0.2, 0.2, 0.1])
    if not dense.any():
        dense[0, 0] = 1
    split = min(split, num_rows - 1)
    online = OnlineGenerativeModel(epochs=5, seed=0, cardinality=cardinality)
    online.update(dense[:split])
    online.update(dense[split:])
    drained = online.drain()
    batch = GenerativeModel(epochs=5, seed=0, cardinality=cardinality).fit(
        SparseLabelMatrix.from_dense(dense)
    )
    assert np.array_equal(drained.weights, batch.weights)
    dense_batch = GenerativeModel(epochs=5, seed=0, cardinality=cardinality).fit(dense)
    assert np.abs(
        drained.predict_proba(dense) - dense_batch.predict_proba(dense)
    ).max() <= 1e-8
    # One-shot folding matches the two-chunk fold after draining.
    whole = OnlineGenerativeModel(epochs=5, seed=0, cardinality=cardinality)
    whole.update(dense)
    assert np.array_equal(whole.drain().weights, drained.weights)
