"""Integration tests: the end-to-end pipeline, baselines, and the user study."""

import numpy as np
import pytest

from repro.baselines import (
    distant_supervision_baseline,
    hand_supervision_baseline,
    unweighted_lf_baseline,
)
from repro.datasets import load_task
from repro.exceptions import ConfigurationError
from repro.pipeline import PipelineConfig, SnorkelPipeline
from repro.userstudy import simulate_user_study
from repro.userstudy.simulate import generate_participants, scores_by_factor


@pytest.fixture(scope="module")
def small_cdr():
    return load_task("cdr", scale=0.06, seed=0)


def test_pipeline_end_to_end(small_cdr):
    config = PipelineConfig(generative_epochs=5, discriminative_epochs=10, seed=0)
    result = SnorkelPipeline(config=config).run(small_cdr)
    assert result.strategy is not None
    assert result.training_probs.shape[0] == len(small_cdr.split_candidates("train"))
    assert np.all((result.training_probs >= 0) & (result.training_probs <= 1))
    assert 0.0 <= result.discriminative_f1 <= 1.0
    assert set(result.timings) == {"lf_application", "label_modeling", "discriminative_training"}


def test_pipeline_sparse_labels_matches_dense(small_cdr):
    dense_config = PipelineConfig(generative_epochs=5, discriminative_epochs=10, seed=0)
    sparse_config = PipelineConfig(
        generative_epochs=5, discriminative_epochs=10, seed=0, sparse_labels=True
    )
    dense_result = SnorkelPipeline(config=dense_config).run(small_cdr)
    sparse_result = SnorkelPipeline(config=sparse_config).run(small_cdr)
    assert sparse_result.label_matrix.is_sparse
    assert np.allclose(
        sparse_result.training_probs, dense_result.training_probs, atol=1e-10
    )
    assert sparse_result.generative_f1 == pytest.approx(dense_result.generative_f1)
    assert sparse_result.strategy.strategy == dense_result.strategy.strategy
    assert sparse_result.strategy.correlations == dense_result.strategy.correlations


def test_pipeline_force_mv_strategy(small_cdr):
    config = PipelineConfig(force_strategy="MV", discriminative_epochs=5, seed=0)
    result = SnorkelPipeline(config=config).run(small_cdr)
    assert result.generative_model is None


def test_pipeline_accepts_multiclass_task():
    # Regression: multi-class tasks used to be hard-rejected with a
    # ConfigurationError and pushed to the standalone Dawid-Skene model; they
    # now train the k-ary generative model (full coverage in
    # tests/test_multiclass.py).
    crowd = load_task("crowd", scale=0.1, seed=0)
    config = PipelineConfig(
        use_optimizer=False, generative_epochs=5, discriminative_epochs=5, seed=0
    )
    result = SnorkelPipeline(config=config).run(crowd)
    assert result.generative_model is not None
    assert result.training_probs.shape == (len(crowd.split_candidates("train")), 5)


def test_pipeline_config_validation():
    with pytest.raises(ConfigurationError):
        PipelineConfig(force_strategy="nope")


def test_baselines_produce_reports(small_cdr):
    distant = distant_supervision_baseline(small_cdr, epochs=5)
    hand = hand_supervision_baseline(small_cdr, epochs=5)
    unweighted = unweighted_lf_baseline(small_cdr, epochs=5)
    for report in (distant, hand, unweighted):
        assert 0.0 <= report.f1 <= 1.0
        assert report.tp + report.fp + report.tn + report.fn == len(
            small_cdr.split_candidates("test")
        )


def test_hand_supervision_budget_subsamples(small_cdr):
    limited = hand_supervision_baseline(small_cdr, label_budget=20, epochs=5, seed=1)
    assert 0.0 <= limited.f1 <= 1.0


def test_user_study_simulation():
    task = load_task("spouses", scale=0.05, seed=0)
    result = simulate_user_study(task, num_participants=3, hand_label_budget=100, seed=0)
    assert len(result.participants) == 3
    assert all(3 <= p.num_lfs <= 14 for p in result.participants)
    assert 0.0 <= result.mean_snorkel_f1 <= 1.0
    grouped = scores_by_factor(result, "education")
    assert sum(len(v) for v in grouped.values()) == 3
    pooled = result.pooled_lfs()
    assert len(pooled) == sum(p.num_lfs for p in result.participants)
    assert len({lf.name for lf in pooled}) == len(pooled)


def test_participant_demographics():
    profiles = generate_participants(14, seed=0)
    assert len(profiles) == 14
    assert all(0.0 <= profile.skill <= 1.0 for profile in profiles)
