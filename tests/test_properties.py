"""Property-based tests (hypothesis) for core invariants.

The second half fuzzes the PR-4 vectorized kernel layer with randomized
workloads (seeded/derandomized, ~50 draws each): random LF correlation
graphs must always produce a valid distance-2 coloring, a
:meth:`SamplerPlan.select_rows` mask must equal recompiling on the row
subset, and dense/sparse storage must compile to draw-identical plans —
the invariants ``tests/test_kernels.py`` pins with hand-built cases.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.labeling.matrix import LabelMatrix
from repro.labelmodel.advantage import estimate_advantage_bound, modeling_advantage
from repro.labelmodel.factor_graph import FactorGraphSpec
from repro.labelmodel.kernels import SamplerPlan, color_columns, run_joint_chain
from repro.labelmodel.majority import MajorityVoter
from repro.types import probs_to_labels, validate_label_matrix
from repro.utils.mathutils import accuracy_to_log_odds, log_odds_to_accuracy, sigmoid, softmax

label_matrices = arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(1, 30), st.integers(1, 8)),
    elements=st.sampled_from([-1, 0, 1]),
)


@given(label_matrices)
@settings(max_examples=50, deadline=None)
def test_label_matrix_statistics_bounded(values):
    matrix = LabelMatrix(values)
    assert 0.0 <= matrix.coverage() <= 1.0
    assert 0.0 <= matrix.label_density() <= matrix.num_lfs
    coverages = matrix.lf_coverage()
    assert np.all((coverages >= 0.0) & (coverages <= 1.0))


@given(label_matrices)
@settings(max_examples=50, deadline=None)
def test_advantage_bound_is_nonnegative_and_bounded(values):
    bound = estimate_advantage_bound(values)
    assert 0.0 <= bound <= 1.0


@given(label_matrices, st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_advantage_of_unit_weights_is_zero(values, seed):
    rng = np.random.default_rng(seed)
    gold = rng.choice([-1, 1], size=values.shape[0])
    assert modeling_advantage(values, gold, np.ones(values.shape[1])) == 0.0


@given(label_matrices)
@settings(max_examples=50, deadline=None)
def test_majority_vote_probabilities_valid(values):
    probs = MajorityVoter().predict_proba(values)
    assert np.all((probs >= 0.0) & (probs <= 1.0))
    labels = probs_to_labels(probs)
    assert set(np.unique(labels)) <= {-1, 1}


@given(st.floats(min_value=0.01, max_value=0.99))
@settings(max_examples=50, deadline=None)
def test_accuracy_log_odds_roundtrip(accuracy):
    assert abs(log_odds_to_accuracy(accuracy_to_log_odds(accuracy)) - accuracy) < 1e-6


@given(arrays(dtype=float, shape=st.integers(1, 50), elements=st.floats(-30, 30)))
@settings(max_examples=50, deadline=None)
def test_sigmoid_bounded_and_monotone(x):
    values = sigmoid(x)
    assert np.all((values >= 0.0) & (values <= 1.0))
    order = np.argsort(x)
    assert np.all(np.diff(np.asarray(values)[order]) >= -1e-12)


@given(arrays(dtype=float, shape=st.tuples(st.integers(1, 10), st.integers(2, 6)),
              elements=st.floats(-20, 20)))
@settings(max_examples=50, deadline=None)
def test_softmax_rows_sum_to_one(x):
    probs = softmax(x, axis=1)
    assert np.allclose(probs.sum(axis=1), 1.0)


@given(label_matrices)
@settings(max_examples=50, deadline=None)
def test_validate_label_matrix_idempotent(values):
    validated = validate_label_matrix(values)
    assert np.array_equal(validated, validate_label_matrix(validated))


# ======================================================= kernel-layer fuzzing
#
# Randomized (seeded) property tests for repro.labelmodel.kernels: the plan
# compiler and chain drivers must uphold their invariants on *arbitrary*
# correlation graphs and abstention patterns, not just the hand-built suites
# of tests/test_kernels.py.

kernel_settings = settings(max_examples=50, deadline=None, derandomize=True)


@st.composite
def correlation_graphs(draw):
    """A random LF count and a random set of correlation edges."""
    num_lfs = draw(st.integers(2, 10))
    num_pairs = draw(st.integers(0, 12))
    pairs = [
        (draw(st.integers(0, num_lfs - 1)), draw(st.integers(0, num_lfs - 1)))
        for _ in range(num_pairs)
    ]
    return num_lfs, [(j, k) for j, k in pairs if j != k]


@st.composite
def kernel_workloads(draw):
    """A correlation graph plus a random label matrix over it."""
    num_lfs, pairs = draw(correlation_graphs())
    cardinality = draw(st.sampled_from([2, 3]))
    num_rows = draw(st.integers(3, 40))
    seed = draw(st.integers(0, 2**16 - 1))
    rng = np.random.default_rng(seed)
    voted = rng.random((num_rows, num_lfs)) < 0.6
    if cardinality == 2:
        values = np.where(rng.random((num_rows, num_lfs)) < 0.5, 1, -1)
    else:
        values = rng.integers(1, cardinality + 1, size=(num_rows, num_lfs))
    matrix = np.where(voted, values, 0).astype(np.int64)
    spec = FactorGraphSpec(num_lfs, pairs, cardinality=cardinality)
    weights = rng.normal(scale=0.8, size=spec.layout.size)
    return spec, matrix, weights, seed


def _run_chain(plan, weights, seed, sweeps=3):
    values, y = run_joint_chain(
        plan, None, np.random.default_rng(seed), weights, sweeps=sweeps
    )
    return values, y


def _canonical_entries(plan):
    return set(
        zip(plan.entry_rows.tolist(), plan.entry_cols.tolist(), plan.entry_values.tolist())
    )


def _canonical_alignments(plan):
    triples = set()
    for update in plan.color_updates:
        self_abs = update.positions[update.local]
        for s, q, w in zip(self_abs, update.partners, update.weight_indices):
            triples.add(
                (
                    (int(plan.entry_rows[s]), int(plan.entry_cols[s])),
                    (int(plan.entry_rows[q]), int(plan.entry_cols[q])),
                    int(w),
                )
            )
    return triples


@given(correlation_graphs())
@kernel_settings
def test_fuzz_coloring_is_valid_distance_two(graph):
    num_lfs, pairs = graph
    spec = FactorGraphSpec(num_lfs, pairs)
    colors = color_columns(spec)
    adjacency = spec.neighbor_sets()
    # Direct edges never share a color (block-Gibbs validity) ...
    for j, k in spec.correlations:
        assert colors[j] != colors[k]
    # ... nor do two columns with a common correlated partner (distance 2),
    # and color 0 is exactly the partner-free columns.
    for a in range(num_lfs):
        assert (colors[a] == 0) == (not adjacency[a])
        for b in range(a + 1, num_lfs):
            if colors[a] == colors[b] and colors[a] != 0:
                assert not (adjacency[a] & adjacency[b])


@given(kernel_workloads())
@kernel_settings
def test_fuzz_dense_and_sparse_plans_draw_identical(workload):
    spec, matrix, weights, seed = workload
    dense_plan = SamplerPlan.compile(spec, matrix)
    sparse_storage = LabelMatrix(matrix, cardinality=spec.cardinality).to_sparse().storage
    sparse_plan = SamplerPlan.compile(spec, sparse_storage)
    assert np.array_equal(dense_plan.entry_rows, sparse_plan.entry_rows)
    assert np.array_equal(dense_plan.entry_cols, sparse_plan.entry_cols)
    assert np.array_equal(dense_plan.entry_values, sparse_plan.entry_values)
    dense_values, dense_y = _run_chain(dense_plan, weights, seed)
    sparse_values, sparse_y = _run_chain(sparse_plan, weights, seed)
    # Identical plans consume the identical RNG stream: same draws, bit for bit.
    assert np.array_equal(dense_values, sparse_values)
    assert np.array_equal(dense_y, sparse_y)


@given(kernel_workloads(), st.integers(0, 2**16 - 1))
@kernel_settings
def test_fuzz_select_rows_equals_recompilation(workload, subset_seed):
    spec, matrix, weights, seed = workload
    plan = SamplerPlan.compile(spec, matrix)
    rng = np.random.default_rng(subset_seed)
    size = int(rng.integers(1, matrix.shape[0] + 1))
    rows = np.sort(rng.choice(matrix.shape[0], size=size, replace=False))
    derived = plan.select_rows(rows)
    fresh = SamplerPlan.compile(spec, matrix[rows])
    # An ascending row subset preserves CSC order, so masking must equal
    # recompilation *exactly* — same entries, same independent set, same
    # per-color blocks.
    assert np.array_equal(derived.entry_rows, fresh.entry_rows)
    assert np.array_equal(derived.entry_cols, fresh.entry_cols)
    assert np.array_equal(derived.entry_values, fresh.entry_values)
    assert np.array_equal(derived.colors, fresh.colors)
    if fresh.independent is None:
        assert derived.independent is None
    else:
        assert np.array_equal(derived.independent, fresh.independent)
    assert len(derived.color_updates) == len(fresh.color_updates)
    for d, f in zip(derived.color_updates, fresh.color_updates):
        assert d.color == f.color
        for field in ("positions", "rows", "weight_indices"):
            assert np.array_equal(getattr(d, field), getattr(f, field)), field
        assert np.array_equal(d.positions[d.local], f.positions[f.local])
        assert np.array_equal(d.partners, f.partners)
    # ... and therefore the chains consume the same RNG stream.
    derived_values, derived_y = _run_chain(derived, weights, seed)
    fresh_values, fresh_y = _run_chain(fresh, weights, seed)
    assert np.array_equal(derived_values, fresh_values)
    assert np.array_equal(derived_y, fresh_y)


@given(kernel_workloads(), st.integers(0, 2**16 - 1))
@kernel_settings
def test_fuzz_select_rows_permuted_is_canonically_equal(workload, subset_seed):
    spec, matrix, weights, seed = workload
    plan = SamplerPlan.compile(spec, matrix)
    rng = np.random.default_rng(subset_seed)
    size = int(rng.integers(1, matrix.shape[0] + 1))
    rows = rng.permutation(matrix.shape[0])[:size]
    derived = plan.select_rows(rows)
    fresh = SamplerPlan.compile(spec, matrix[rows])
    # A permuted subset reorders entries (derived keeps the parent's CSC
    # filter order, a fresh compile re-sorts rows within each column), so
    # equality holds on the canonical entry/alignment sets.
    assert derived.nnz == fresh.nnz
    assert derived.num_colors == fresh.num_colors
    assert _canonical_entries(derived) == _canonical_entries(fresh)
    assert _canonical_alignments(derived) == _canonical_alignments(fresh)
    assert np.array_equal(
        derived.scatter_dense(derived.entry_values), matrix[rows]
    )
