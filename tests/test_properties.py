"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.labeling.matrix import LabelMatrix
from repro.labelmodel.advantage import estimate_advantage_bound, modeling_advantage
from repro.labelmodel.majority import MajorityVoter
from repro.types import probs_to_labels, validate_label_matrix
from repro.utils.mathutils import accuracy_to_log_odds, log_odds_to_accuracy, sigmoid, softmax

label_matrices = arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(1, 30), st.integers(1, 8)),
    elements=st.sampled_from([-1, 0, 1]),
)


@given(label_matrices)
@settings(max_examples=50, deadline=None)
def test_label_matrix_statistics_bounded(values):
    matrix = LabelMatrix(values)
    assert 0.0 <= matrix.coverage() <= 1.0
    assert 0.0 <= matrix.label_density() <= matrix.num_lfs
    coverages = matrix.lf_coverage()
    assert np.all((coverages >= 0.0) & (coverages <= 1.0))


@given(label_matrices)
@settings(max_examples=50, deadline=None)
def test_advantage_bound_is_nonnegative_and_bounded(values):
    bound = estimate_advantage_bound(values)
    assert 0.0 <= bound <= 1.0


@given(label_matrices, st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_advantage_of_unit_weights_is_zero(values, seed):
    rng = np.random.default_rng(seed)
    gold = rng.choice([-1, 1], size=values.shape[0])
    assert modeling_advantage(values, gold, np.ones(values.shape[1])) == 0.0


@given(label_matrices)
@settings(max_examples=50, deadline=None)
def test_majority_vote_probabilities_valid(values):
    probs = MajorityVoter().predict_proba(values)
    assert np.all((probs >= 0.0) & (probs <= 1.0))
    labels = probs_to_labels(probs)
    assert set(np.unique(labels)) <= {-1, 1}


@given(st.floats(min_value=0.01, max_value=0.99))
@settings(max_examples=50, deadline=None)
def test_accuracy_log_odds_roundtrip(accuracy):
    assert abs(log_odds_to_accuracy(accuracy_to_log_odds(accuracy)) - accuracy) < 1e-6


@given(arrays(dtype=float, shape=st.integers(1, 50), elements=st.floats(-30, 30)))
@settings(max_examples=50, deadline=None)
def test_sigmoid_bounded_and_monotone(x):
    values = sigmoid(x)
    assert np.all((values >= 0.0) & (values <= 1.0))
    order = np.argsort(x)
    assert np.all(np.diff(np.asarray(values)[order]) >= -1e-12)


@given(arrays(dtype=float, shape=st.tuples(st.integers(1, 10), st.integers(2, 6)),
              elements=st.floats(-20, 20)))
@settings(max_examples=50, deadline=None)
def test_softmax_rows_sum_to_one(x):
    probs = softmax(x, axis=1)
    assert np.allclose(probs.sum(axis=1), 1.0)


@given(label_matrices)
@settings(max_examples=50, deadline=None)
def test_validate_label_matrix_idempotent(values):
    validated = validate_label_matrix(values)
    assert np.array_equal(validated, validate_label_matrix(validated))
