"""The pushdown layer: compiled kernels must be bit-identical to interpreted.

Every test here enforces the package's cardinal rule from a different angle:
per predicate shape (all six the classifier names), per executor backend,
per chunk size, with mixed compiled/OPAQUE suites, with planted per-row
failures, and under hypothesis-driven randomized corpora (including
adversarial token text — NULs, case-exotic characters — aimed at the
vectorized string kernels' fallback guards).  "Identical" always means the
full contract: same label matrix, same suppressed-error counts, same
per-exception-type breakdowns, and the same exception out of a
non-fault-tolerant run.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.context.candidates import Candidate, SentenceView, SpanView
from repro.datasets.lf_library import LINT_LFS
from repro.datasets.synthetic import stream_relation_candidates
from repro.exceptions import LabelingError
from repro.labeling import LFApplier, PushdownPlan, build_plan
from repro.labeling.engine.accumulator import apply_chunk
from repro.labeling.lf import LabelingFunction
from repro.labeling.pushdown import label_chunk_pushdown
from repro.types import ABSTAIN, POSITIVE
from repro.utils.textutils import contains_any

# ---------------------------------------------------------------------------
# Planted LFs covering the classifier shapes the library suite misses.
# ---------------------------------------------------------------------------


def _constant_body(candidate):
    return POSITIVE


def _projection_body(candidate):
    # Out-of-range distances raise in canonicalization; the differential
    # tests rely on that to pin error fidelity for the projection shape.
    return candidate.token_distance()


def _clamped_projection_body(candidate):
    return max(-1, min(1, candidate.token_distance() - 1))


def _entity_eq_body(candidate):
    return POSITIVE if candidate.span1.entity_type == "chemical" else ABSTAIN


def planted_lfs():
    return [
        LabelingFunction("lf_planted_constant", _constant_body),
        LabelingFunction("lf_planted_projection", _projection_body),
        LabelingFunction("lf_planted_clamped", _clamped_projection_body),
        LabelingFunction("lf_planted_entity_eq", _entity_eq_body),
    ]


def opaque_lf():
    """An LF the analyzer must refuse (unseeded randomness)."""
    import random

    def body(candidate):
        return random.Random(candidate.uid).choice([POSITIVE, ABSTAIN])

    return LabelingFunction("lf_opaque_random", body)


def full_suite():
    return LINT_LFS() + planted_lfs()


def corpus(n=400, seed=0, error_rate=0.0):
    return list(stream_relation_candidates(num_points=n, seed=seed, error_rate=error_rate))


def assert_identical_runs(lfs, candidates, **applier_kwargs):
    """Apply with pushdown off and auto; assert the full contract matches."""
    base = LFApplier(lfs, fault_tolerant=True, **applier_kwargs)
    base_matrix = base.apply(candidates)
    push = LFApplier(lfs, fault_tolerant=True, pushdown="auto", **applier_kwargs)
    push_matrix = push.apply(candidates)
    np.testing.assert_array_equal(base_matrix.values, push_matrix.values)
    assert base.last_report.errors == push.last_report.errors
    base_types = {k: v.type_counts for k, v in base.last_report.error_details.items()}
    push_types = {k: v.type_counts for k, v in push.last_report.error_details.items()}
    assert base_types == push_types
    return push.last_report


# ---------------------------------------------------------------------------
# Shape coverage
# ---------------------------------------------------------------------------


class TestShapeCoverage:
    def test_all_six_shapes_present_and_compiled(self):
        from repro.analysis import analyze_lf

        lfs = full_suite()
        plan = build_plan(lfs)
        assert not plan.fallback, plan.fallback_reasons
        shapes = {analyze_lf(lf).pushdown.shape for lf in lfs}
        assert shapes >= {
            "regex_match",
            "membership",
            "threshold_compare",
            "field_equality",
            "field_projection",
            "constant",
        }

    def test_each_shape_matches_interpreted(self):
        from repro.analysis import analyze_lf

        lfs = full_suite()
        candidates = corpus(300, seed=2, error_rate=0.05)
        by_shape: dict = {}
        for lf in lfs:
            by_shape.setdefault(analyze_lf(lf).pushdown.shape, []).append(lf)
        for shape, shape_lfs in by_shape.items():
            assert_identical_runs(shape_lfs, candidates)


# ---------------------------------------------------------------------------
# Executors × chunk sizes, mixed suites, fused path
# ---------------------------------------------------------------------------


class TestBackendsAndChunking:
    @pytest.mark.parametrize("backend,workers", [
        ("sequential", 1),
        ("threads", 3),
        ("processes", 2),
    ])
    @pytest.mark.parametrize("chunk_size", [37, 256, 10_000])
    def test_identical_across_backends_and_chunk_sizes(self, backend, workers, chunk_size):
        candidates = corpus(500, seed=4, error_rate=0.04)
        assert_identical_runs(
            full_suite(),
            candidates,
            backend=backend,
            num_workers=workers,
            chunk_size=chunk_size,
        )

    def test_mixed_compiled_and_opaque_suite(self):
        lfs = full_suite() + [opaque_lf()]
        candidates = corpus(300, seed=5, error_rate=0.05)
        report = assert_identical_runs(lfs, candidates, chunk_size=64)
        assert report.pushdown is not None
        assert "lf_opaque_random" in report.pushdown.fallback
        assert set(report.pushdown.compiled) == {lf.name for lf in full_suite()}

    def test_generator_input_matches_list_input(self):
        lfs = full_suite()
        base = LFApplier(lfs, fault_tolerant=True, pushdown="auto", chunk_size=64)
        from_list = base.apply(corpus(250, seed=6))
        streamed = LFApplier(lfs, fault_tolerant=True, pushdown="auto", chunk_size=64)
        from_gen = streamed.apply(
            stream_relation_candidates(num_points=250, seed=6), sparse=True
        )
        np.testing.assert_array_equal(from_list.values, from_gen.to_dense().values)

    def test_fused_apply_with_features_matches(self):
        from repro.discriminative.featurizers import RelationFeaturizer

        lfs = full_suite()
        candidates = corpus(200, seed=7)
        featurizer = RelationFeaturizer(num_features=64).fit()
        base = LFApplier(lfs, fault_tolerant=True, chunk_size=48)
        base_matrix, base_blocks = base.apply_with_features(
            iter(candidates), featurizer, sparse=True
        )
        push = LFApplier(lfs, fault_tolerant=True, chunk_size=48, pushdown="auto")
        push_matrix, push_blocks = push.apply_with_features(
            iter(candidates), featurizer, sparse=True
        )
        np.testing.assert_array_equal(
            base_matrix.to_dense().values, push_matrix.to_dense().values
        )
        assert len(base_blocks) == len(push_blocks)
        for left, right in zip(base_blocks, push_blocks):
            np.testing.assert_array_equal(left.toarray(), right.toarray())
        assert push.last_report.pushdown is not None


# ---------------------------------------------------------------------------
# Error fidelity
# ---------------------------------------------------------------------------


class TestErrorFidelity:
    def test_non_fault_tolerant_raises_identically(self):
        lfs = LINT_LFS()
        candidates = corpus(200, seed=8, error_rate=0.1)
        with pytest.raises(Exception) as base_exc:
            LFApplier(lfs).apply(candidates)
        with pytest.raises(Exception) as push_exc:
            LFApplier(lfs, pushdown="auto").apply(candidates)
        assert type(base_exc.value) is type(push_exc.value)
        assert str(base_exc.value) == str(push_exc.value)
        assert type(base_exc.value.__cause__) is type(push_exc.value.__cause__)

    def test_planted_token_errors_fall_back_per_row(self):
        # error_rate plants non-string tokens: the token kernels must hand
        # exactly those rows to the per-row fallback and report the same
        # exception types the interpreted path sees.
        candidates = corpus(300, seed=9, error_rate=0.25)
        report = assert_identical_runs(LINT_LFS(), candidates, chunk_size=50)
        assert report.num_errors > 0

    def test_derived_field_override_disables_derivation(self):
        class LoudCandidate(Candidate):
            def words_between(self):
                return ["causes", "override"]

        originals = corpus(120, seed=10)
        fields = [f.name for f in dataclasses.fields(Candidate)]
        candidates = [
            LoudCandidate(**{name: getattr(c, name) for name in fields})
            for c in originals
        ]
        assert_identical_runs(LINT_LFS(), candidates)
        # And the override must actually matter: the interpreted labels on
        # the subclass differ from the stock candidates'.
        stock = LFApplier(LINT_LFS(), fault_tolerant=True).apply(originals)
        loud = LFApplier(LINT_LFS(), fault_tolerant=True).apply(candidates)
        assert not np.array_equal(stock.values, loud.values)


# ---------------------------------------------------------------------------
# require-mode diagnostics
# ---------------------------------------------------------------------------


class TestRequireMode:
    def test_require_passes_when_all_compile(self):
        candidates = corpus(50, seed=11)
        matrix = LFApplier(
            full_suite(), fault_tolerant=True, pushdown="require"
        ).apply(candidates)
        assert matrix.shape == (50, len(full_suite()))

    def test_require_names_every_offender_with_reason(self):
        lfs = full_suite() + [opaque_lf()]
        with pytest.raises(LabelingError) as exc:
            LFApplier(lfs, fault_tolerant=True, pushdown="require").apply(corpus(10))
        message = str(exc.value)
        assert "lf_opaque_random" in message
        assert 'pushdown="require"' in message

    def test_unknown_mode_rejected(self):
        with pytest.raises(LabelingError):
            LFApplier(LINT_LFS(), pushdown="always")


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


class TestReporting:
    def test_lf_seconds_and_pushdown_summary(self):
        lfs = full_suite() + [opaque_lf()]
        applier = LFApplier(lfs, fault_tolerant=True, pushdown="auto", chunk_size=64)
        applier.apply(corpus(300, seed=12))
        report = applier.last_report
        assert set(report.lf_seconds) == {lf.name for lf in lfs}
        assert all(seconds >= 0.0 for seconds in report.lf_seconds.values())
        summary = report.pushdown
        assert summary.compile_seconds >= 0.0
        assert summary.compiled_seconds > 0.0
        assert summary.fallback_seconds > 0.0
        assert summary.fallback["lf_opaque_random"]

    def test_off_mode_reports_lf_seconds_without_summary(self):
        applier = LFApplier(LINT_LFS(), fault_tolerant=True)
        applier.apply(corpus(100, seed=13))
        report = applier.last_report
        assert set(report.lf_seconds) == {lf.name for lf in LINT_LFS()}
        assert report.pushdown is None

    def test_plan_is_cached_per_suite(self):
        applier = LFApplier(LINT_LFS(), fault_tolerant=True, pushdown="auto")
        applier.apply(corpus(30, seed=14))
        applier.apply(corpus(30, seed=15))
        assert len(applier._pushdown_plans) == 1


# ---------------------------------------------------------------------------
# Hypothesis: compile-or-clean-fallback, never wrong labels
# ---------------------------------------------------------------------------


@given(
    num_points=st.integers(0, 120),
    seed=st.integers(0, 2**16),
    error_rate=st.floats(0.0, 0.3),
    chunk_size=st.integers(1, 64),
)
@settings(max_examples=20, deadline=None)
def test_fuzz_randomized_corpora_identical(num_points, seed, error_rate, chunk_size):
    candidates = list(
        stream_relation_candidates(
            num_points=num_points, seed=seed, error_rate=error_rate
        )
    )
    lfs = LINT_LFS()
    plan = build_plan(lfs)
    assert isinstance(plan, PushdownPlan)
    base = apply_chunk(lfs, True, 0, 0, candidates)
    push = label_chunk_pushdown(plan, True, 0, 0, candidates)
    np.testing.assert_array_equal(base.row_offsets, push.row_offsets)
    np.testing.assert_array_equal(base.cols, push.cols)
    np.testing.assert_array_equal(base.values, push.values)
    assert base.errors == push.errors
    assert {k: v.type_counts for k, v in base.error_details.items()} == {
        k: v.type_counts for k, v in push.error_details.items()
    }


def _make_candidate(uid, words):
    """A two-span candidate over arbitrary (possibly adversarial) tokens."""
    words = list(words)
    sentence = SentenceView(words=words, text=" ".join(words), position=uid % 9)
    return Candidate(
        uid=uid,
        span1=SpanView(
            text=words[0], word_start=0, word_end=1, entity_type="chemical",
            canonical_id=words[0],
        ),
        span2=SpanView(
            text=words[-1], word_start=len(words) - 1, word_end=len(words),
            entity_type="disease", canonical_id=words[-1],
        ),
        sentence=sentence,
        relation_type="causes",
    )


# Token alphabet aimed at the string kernels' guards: case-exotic characters
# (long s, dotless i, Kelvin sign), NULs (numpy U-dtype drops trailing NULs),
# plus ordinary cue words the LINT suite reacts to.
_TOKENS = st.one_of(
    st.sampled_from(["causes", "CAUSES", "treats", "causſ", "ı", "KK", "x"]),
    st.text(alphabet="castreſı\x00İK ", min_size=0, max_size=6),
)


@given(rows=st.lists(st.lists(_TOKENS, min_size=2, max_size=10), min_size=1, max_size=40))
@settings(max_examples=25, deadline=None)
def test_fuzz_adversarial_token_text_identical(rows):
    candidates = [_make_candidate(i, words) for i, words in enumerate(rows)]
    lfs = LINT_LFS()
    plan = build_plan(lfs)
    base = apply_chunk(lfs, True, 0, 0, candidates)
    push = label_chunk_pushdown(plan, True, 0, 0, candidates)
    np.testing.assert_array_equal(base.row_offsets, push.row_offsets)
    np.testing.assert_array_equal(base.cols, push.cols)
    np.testing.assert_array_equal(base.values, push.values)
    assert base.errors == push.errors


def test_contains_any_guard_stays_callable():
    # The compiler's membership specialization precomputes the normalized
    # vocabulary at compile time; the helper must stay usable directly.
    assert contains_any(["CAUSES"], {"causes"})
