"""Sparse label-matrix backend: storage, dense/sparse equivalence, bugfixes.

The equivalence suite runs every consumer twice — once on dense storage,
once on CSR — and demands identical results: ``predict_proba`` to 1e-10,
learned accuracies, structure selections, and every ``LabelMatrix``
statistic, including all-abstain rows and empty-column edge cases.  The
whole module is parametrized over the scipy backend and the pure-numpy
fallback.
"""

import numpy as np
import pytest

import repro.labeling.sparse as sparse_mod
from repro.datasets.synthetic import (
    generate_correlated_label_matrix,
    generate_label_matrix,
    generate_misspecification_example,
)
from repro.exceptions import LabelingError
from repro.labeling import LabelMatrix, SparseLabelMatrix
from repro.labelmodel import (
    GenerativeModel,
    MajorityVoter,
    StructureLearner,
    WeightedMajorityVoter,
    estimate_advantage_bound,
    modeling_advantage,
)
from repro.labelmodel.factor_graph import FactorGraphSpec
from repro.labelmodel.gibbs import GibbsSampler
from repro.labelmodel.majority import MultiClassMajorityVoter
from repro.types import ABSTAIN, NEGATIVE, POSITIVE


@pytest.fixture(params=["scipy", "numpy-fallback"])
def backend(request, monkeypatch):
    """Run each test under both the scipy backend and the numpy fallback."""
    if request.param == "numpy-fallback":
        monkeypatch.setattr(sparse_mod, "FORCE_NUMPY_FALLBACK", True)
    elif not sparse_mod.HAVE_SCIPY:
        pytest.skip("scipy not installed")
    return request.param


#: A small matrix exercising the edge cases: an all-abstain row (2), a row
#: with a single vote, and an empty column (2).
EDGE = np.array(
    [
        [1, -1, 0, 1],
        [0, 1, 0, -1],
        [0, 0, 0, 0],
        [-1, 0, 0, 0],
        [1, 1, 0, 1],
    ],
    dtype=np.int64,
)


# --------------------------------------------------------------------- storage
def test_roundtrip_and_counts(backend):
    storage = SparseLabelMatrix.from_dense(EDGE)
    assert storage.nnz == 9
    assert np.array_equal(storage.to_dense(), EDGE)
    assert storage.row_nnz().tolist() == [3, 2, 0, 1, 3]
    assert storage.col_nnz().tolist() == [3, 3, 0, 3]
    assert storage.count_per_row(POSITIVE).tolist() == [2, 1, 0, 0, 3]
    assert storage.count_per_col(NEGATIVE).tolist() == [1, 1, 0, 1]


def test_from_triples_any_order_and_errors(backend):
    rows, cols = np.nonzero(EDGE != ABSTAIN)
    vals = EDGE[rows, cols]
    shuffle = np.random.default_rng(0).permutation(rows.size)
    storage = SparseLabelMatrix.from_triples(
        rows[shuffle], cols[shuffle], vals[shuffle], EDGE.shape
    )
    assert np.array_equal(storage.to_dense(), EDGE)
    # Abstain triples are dropped, not stored.
    with_zeros = SparseLabelMatrix.from_triples([0, 0], [0, 1], [1, 0], (2, 2))
    assert with_zeros.nnz == 1
    with pytest.raises(LabelingError):
        SparseLabelMatrix.from_triples([0, 0], [1, 1], [1, -1], (2, 2))  # duplicate
    with pytest.raises(LabelingError):
        SparseLabelMatrix.from_triples([5], [0], [1], (2, 2))  # out of range


def test_matvec_row_sums_and_csc(backend):
    storage = SparseLabelMatrix.from_dense(EDGE)
    weights = np.array([0.5, -1.5, 2.0, 0.25])
    assert np.allclose(storage.matvec(weights), EDGE @ weights)
    assert np.allclose(storage.row_sums(), EDGE.sum(axis=1))
    for j in range(EDGE.shape[1]):
        rows, vals = storage.column(j)
        expected = np.flatnonzero(EDGE[:, j] != ABSTAIN)
        assert rows.tolist() == expected.tolist()
        assert vals.tolist() == EDGE[expected, j].tolist()


def test_with_csc_data_preserves_pattern(backend):
    storage = SparseLabelMatrix.from_dense(EDGE)
    _, _, vals = storage.csc()
    flipped = storage.with_csc_data(-vals)
    assert np.array_equal(flipped.to_dense(), -EDGE)


def test_select_rows_and_columns(backend):
    storage = SparseLabelMatrix.from_dense(EDGE)
    rows = np.array([4, 0, 2])
    assert np.array_equal(storage.select_rows(rows).to_dense(), EDGE[rows])
    cols = np.array([3, 0])
    assert np.array_equal(storage.select_columns(cols).to_dense(), EDGE[:, cols])


def test_select_accepts_boolean_masks(backend):
    # Regression: a boolean mask must select rows like numpy fancy indexing,
    # not be cast to the integer index list [1, 1, 0, ...].
    storage = SparseLabelMatrix.from_dense(EDGE)
    row_mask = np.array([True, False, True, False, True])
    assert np.array_equal(storage.select_rows(row_mask).to_dense(), EDGE[row_mask])
    col_mask = np.array([True, False, False, True])
    assert np.array_equal(storage.select_columns(col_mask).to_dense(), EDGE[:, col_mask])
    with pytest.raises(LabelingError):
        storage.select_rows(np.array([True, False]))  # wrong mask length
    wrapped = LabelMatrix(EDGE).to_sparse()
    covered = wrapped.covered_rows()
    assert np.array_equal(wrapped.select_rows(covered).values, EDGE[covered])


def test_scipy_interop():
    if not sparse_mod.HAVE_SCIPY:
        pytest.skip("scipy not installed")
    import scipy.sparse as sp

    storage = SparseLabelMatrix.from_scipy(sp.csr_matrix(EDGE))
    assert np.array_equal(storage.to_dense(), EDGE)
    assert np.array_equal(storage.to_scipy().toarray(), EDGE)
    # LabelMatrix accepts scipy matrices directly.
    wrapped = LabelMatrix(sp.coo_matrix(EDGE))
    assert wrapped.is_sparse
    assert np.array_equal(wrapped.values, EDGE)


# ------------------------------------------------------------------- wrapper
def test_label_matrix_statistics_match(backend):
    dense = LabelMatrix(EDGE)
    sparse = dense.to_sparse()
    assert sparse.is_sparse and not dense.is_sparse
    assert sparse.to_dense().is_sparse is False
    assert sparse.shape == dense.shape
    assert sparse.label_density() == pytest.approx(dense.label_density())
    assert sparse.coverage() == pytest.approx(dense.coverage())
    assert np.allclose(sparse.lf_coverage(), dense.lf_coverage())
    assert sparse.class_balance() == dense.class_balance()
    assert sparse.lf_polarity() == dense.lf_polarity()
    for label in (POSITIVE, NEGATIVE):
        assert np.array_equal(sparse.vote_counts(label), dense.vote_counts(label))
    assert np.allclose(sparse.row_sums(), dense.row_sums())
    assert np.array_equal(sparse.non_abstain_mask, dense.non_abstain_mask)
    assert np.array_equal(sparse.values, dense.values)
    assert np.array_equal(sparse.column("lf_1"), dense.column("lf_1"))
    assert np.array_equal(sparse[1], dense[1])


def test_label_matrix_slicing_preserves_storage(backend):
    sparse = LabelMatrix(EDGE).to_sparse()
    rows = sparse.select_rows([0, 3, 4])
    assert rows.is_sparse
    assert np.array_equal(rows.values, EDGE[[0, 3, 4]])
    lfs = sparse.select_lfs(["lf_3", "lf_0"])
    assert lfs.is_sparse
    assert np.array_equal(lfs.values, EDGE[:, [3, 0]])
    assert lfs.lf_names == ["lf_3", "lf_0"]


def test_sparse_label_validation(backend):
    bad = SparseLabelMatrix.from_triples([0], [0], [2], (2, 2))
    with pytest.raises(LabelingError):
        LabelMatrix(bad)  # 2 is outside the binary vocabulary
    LabelMatrix(bad, cardinality=3)  # but fine for a 3-class task


def test_from_sparse_classmethod(backend):
    storage = SparseLabelMatrix.from_dense(EDGE)
    wrapped = LabelMatrix.from_sparse(storage, lf_names=list("abcd"))
    assert wrapped.is_sparse
    assert wrapped.lf_names == list("abcd")


# ----------------------------------------------------------- model equivalence
@pytest.fixture(scope="module")
def correlated_data():
    return generate_correlated_label_matrix(
        num_points=900, num_independent=6, num_groups=4, group_size=3,
        propensity=0.3, seed=0,
    )


def test_em_dense_sparse_equivalence(backend, correlated_data):
    dense = correlated_data.label_matrix
    sparse = dense.to_sparse()
    pairs = correlated_data.correlated_pairs
    for correlations, balance in (((), None), (pairs, None), (pairs, 0.3)):
        dense_model = GenerativeModel(epochs=15, class_balance=balance, seed=0).fit(
            dense, correlations=correlations
        )
        sparse_model = GenerativeModel(epochs=15, class_balance=balance, seed=0).fit(
            sparse, correlations=correlations
        )
        assert np.allclose(
            dense_model.predict_proba(dense), sparse_model.predict_proba(sparse), atol=1e-10
        )
        assert np.allclose(
            dense_model.learned_accuracies(), sparse_model.learned_accuracies(), atol=1e-10
        )
        assert np.allclose(dense_model.weights, sparse_model.weights, atol=1e-10)
        assert dense_model.class_prior_weight_ == pytest.approx(
            sparse_model.class_prior_weight_, abs=1e-10
        )
        # Cross-storage scoring also agrees.
        assert np.allclose(
            dense_model.predict_proba(sparse), dense_model.predict_proba(dense), atol=1e-10
        )


def test_em_equivalence_with_edge_rows_and_columns(backend):
    # All-abstain rows and an entirely empty column must not diverge.
    dense = LabelMatrix(EDGE)
    sparse = dense.to_sparse()
    dense_model = GenerativeModel(epochs=10, seed=0).fit(dense)
    sparse_model = GenerativeModel(epochs=10, seed=0).fit(sparse)
    assert np.allclose(
        dense_model.predict_proba(dense), sparse_model.predict_proba(sparse), atol=1e-10
    )
    assert np.allclose(dense_model.weights, sparse_model.weights, atol=1e-10)


def test_cd_method_accepts_sparse(backend):
    data = generate_label_matrix(num_points=200, num_lfs=5, propensity=0.3, seed=0)
    model = GenerativeModel(method="cd", epochs=3, seed=0).fit(data.label_matrix.to_sparse())
    probs = model.predict_proba(data.label_matrix.to_sparse())
    assert probs.shape == (200,)
    assert np.all((probs >= 0) & (probs <= 1))


def test_gibbs_dense_sparse_equivalence(backend, correlated_data):
    dense = correlated_data.label_matrix
    sparse = dense.to_sparse()
    spec = FactorGraphSpec(dense.num_lfs, correlated_data.correlated_pairs)
    weights = spec.initial_weights()
    weights[spec.layout.correlation_slice] = 0.8
    dense_sampler = GibbsSampler(spec, seed=11)
    sparse_sampler = GibbsSampler(spec, seed=11)
    assert np.allclose(
        dense_sampler.label_posteriors(weights, dense.values),
        sparse_sampler.label_posteriors(weights, sparse),
        atol=1e-12,
    )
    y = np.where(np.random.default_rng(5).random(dense.num_candidates) < 0.5, 1, -1)
    dense_sample = dense_sampler.sample_lf_outputs(weights, dense.values, y, sweeps=2)
    sparse_sample = sparse_sampler.sample_lf_outputs(weights, sparse, y, sweeps=2)
    assert isinstance(sparse_sample, SparseLabelMatrix)
    assert np.array_equal(dense_sample, sparse_sample.to_dense())
    # The abstention pattern is held fixed.
    assert np.array_equal(sparse_sample.indices, sparse.storage.indices)
    sampled_matrix, sampled_y = sparse_sampler.sample_joint(weights, sparse, sweeps=1)
    assert isinstance(sampled_matrix, SparseLabelMatrix)
    assert sampled_y.shape == (dense.num_candidates,)


def test_structure_dense_sparse_equivalence(backend, correlated_data):
    dense = correlated_data.label_matrix
    sparse = dense.to_sparse()
    dense_learner = StructureLearner(seed=0).fit(dense)
    sparse_learner = StructureLearner(seed=0).fit(sparse)
    assert np.allclose(
        dense_learner.dependency_weights_, sparse_learner.dependency_weights_, atol=1e-10
    )
    for threshold in (0.05, 0.1, 0.3):
        assert dense_learner.select(threshold) == sparse_learner.select(threshold)


def test_majority_and_advantage_equivalence(backend, correlated_data):
    dense = correlated_data.label_matrix
    sparse = dense.to_sparse()
    gold = correlated_data.gold_labels
    assert np.allclose(
        MajorityVoter().predict_proba(dense), MajorityVoter().predict_proba(sparse)
    )
    assert np.array_equal(
        MajorityVoter().predict(dense), MajorityVoter().predict(sparse)
    )
    weights = np.linspace(0.2, 1.2, dense.num_lfs)
    wmv = WeightedMajorityVoter(weights)
    assert np.allclose(wmv.predict_proba(dense), wmv.predict_proba(sparse), atol=1e-12)
    assert estimate_advantage_bound(dense) == pytest.approx(
        estimate_advantage_bound(sparse), abs=1e-12
    )
    assert modeling_advantage(dense, gold, weights) == pytest.approx(
        modeling_advantage(sparse, gold, weights), abs=1e-12
    )


def test_multiclass_majority_sparse(backend):
    matrix = np.array([[1, 1, 2], [0, 3, 3], [0, 0, 0]])
    sparse = LabelMatrix(matrix, cardinality=3).to_sparse()
    voter = MultiClassMajorityVoter(cardinality=3)
    assert np.array_equal(voter.predict(matrix), voter.predict(sparse))
    assert np.allclose(voter.predict_proba(matrix), voter.predict_proba(sparse))


# ------------------------------------------------------------------ generators
def test_synthetic_generators_sparse_option(backend):
    dense = generate_label_matrix(num_points=300, num_lfs=8, propensity=0.1, seed=4)
    sparse = generate_label_matrix(num_points=300, num_lfs=8, propensity=0.1, seed=4, sparse=True)
    assert sparse.label_matrix.is_sparse
    assert np.array_equal(dense.label_matrix.values, sparse.label_matrix.values)
    assert np.array_equal(dense.gold_labels, sparse.gold_labels)
    corr = generate_correlated_label_matrix(num_points=100, seed=1, sparse=True)
    assert corr.label_matrix.is_sparse
    mis = generate_misspecification_example(num_points=100, seed=1, sparse=True)
    assert mis.label_matrix.is_sparse


# ------------------------------------------------------------------- bugfixes
def test_em_reestimates_class_balance():
    # 80% of the covered rows receive only positive votes; with the balance
    # re-estimated each iteration the recorded class-prior weight is positive,
    # and fixing a small balance pulls it negative.
    matrix = np.array([[1, 1, 0]] * 80 + [[0, -1, -1]] * 20)
    free = GenerativeModel(epochs=10, seed=0).fit(matrix)
    assert free.class_prior_weight_ > 0.0
    fixed = GenerativeModel(epochs=10, class_balance=0.05, seed=0).fit(matrix)
    assert fixed.class_prior_weight_ == pytest.approx(0.5 * np.log(0.05 / 0.95))
    assert free.predict_proba(matrix).mean() > fixed.predict_proba(matrix).mean()
    # The estimated prior calibrates rows with no evidence: an all-abstain row
    # now scores at the estimated balance instead of an uninformative 0.5,
    # while covered rows keep their evidence-only posterior.
    with_empty = np.vstack([matrix, [[0, 0, 0]]])
    probs = free.predict_proba(with_empty)
    implied_balance = 1.0 / (1.0 + np.exp(-2.0 * free.class_prior_weight_))
    assert probs[-1] == pytest.approx(implied_balance)
    assert probs[-1] > 0.5
    # A supplied balance shifts every row (the seed semantics).
    assert fixed.predict_proba(with_empty)[-1] == pytest.approx(0.05)


def test_em_estimated_balance_does_not_collapse_on_imbalanced_data():
    # Regression: estimating the balance from prior-shifted posteriors is a
    # positive-feedback loop that runs away to the all-negative solution on
    # imbalanced matrices (probabilities -> 0, F1 -> 0).  The stable
    # estimator must track the evidence instead.
    data = generate_label_matrix(
        num_points=2000, num_lfs=20, accuracy=0.75, propensity=0.3,
        class_balance=0.25, seed=0,
    )
    model = GenerativeModel(epochs=30, seed=0).fit(data.label_matrix)
    balance = 1.0 / (1.0 + np.exp(-2.0 * model.class_prior_weight_))
    assert 0.1 < balance < 0.45  # near the true 0.25, far from the 1e-3 clip
    # Covered rows keep their evidence-only posterior: predictions stay sane.
    accuracy = model.score(data.label_matrix, data.gold_labels)
    assert accuracy > 0.7


def test_structure_learner_seed_is_threaded():
    features = np.random.default_rng(3).standard_normal((40, 6))
    one = StructureLearner._spectral_norm_squared(features, iterations=1, seed=1)
    two = StructureLearner._spectral_norm_squared(features, iterations=1, seed=2)
    assert one != two  # different starting vectors actually reach the estimate
    again = StructureLearner._spectral_norm_squared(features, iterations=1, seed=1)
    assert one == pytest.approx(again)
    data = generate_correlated_label_matrix(num_points=300, seed=1)
    first = StructureLearner(seed=7).fit(data.label_matrix).dependency_weights_
    second = StructureLearner(seed=7).fit(data.label_matrix).dependency_weights_
    assert np.array_equal(first, second)
    # A Generator seed is accepted too.
    StructureLearner(seed=np.random.default_rng(0)).fit(data.label_matrix)


def test_structure_proxy_excludes_own_vote():
    # Two always-voting, independent LFs.  With the old leaky proxy
    # (sign of the row sum INCLUDING LF j), the pair (v1, proxy) determines
    # v0 exactly — proxy==0 implies v0 == -v1 — so the node-wise regression
    # reached perfect separation through the dependency coefficient and
    # inflated the pair's score.  Excluding the own vote removes the leak and
    # the independent pair scores near zero.
    rng = np.random.default_rng(0)
    matrix = np.where(rng.random((2000, 2)) < 0.5, 1, -1).astype(np.int64)
    learner = StructureLearner(seed=0).fit(matrix)
    assert learner.pair_scores()[(0, 1)] < 0.1


def test_structure_proxy_still_finds_planted_pairs():
    data = generate_correlated_label_matrix(
        num_points=1000, num_independent=4, num_groups=3, group_size=2,
        propensity=0.5, copy_probability=0.95, seed=3,
    )
    scores = StructureLearner(seed=0).fit(data.label_matrix).pair_scores()
    planted = np.mean([scores[pair] for pair in data.correlated_pairs])
    others = np.mean(
        [score for pair, score in scores.items() if pair not in set(data.correlated_pairs)]
    )
    assert planted > others
