"""Sparse discriminative featurization: CSR features, equivalence, end model.

Mirrors the dense/sparse equivalence discipline of ``tests/test_sparse.py``:
the sparse batch-transform path must produce exactly the dense feature
values, every linear-algebra operation the end models use must agree between
the scipy backend and the pure-numpy fallback, and the noise-aware logistic
regression must learn the same weights from either storage.
"""

import numpy as np
import pytest

import repro.labeling.sparse as sparse_mod
from repro.context.candidates import Candidate, SentenceView, SpanView
from repro.discriminative import (
    CSRFeatureMatrix,
    HashingVectorizer,
    NoiseAwareLogisticRegression,
    RelationFeaturizer,
    as_float_features,
)
from repro.exceptions import ConfigurationError


@pytest.fixture(params=["scipy", "numpy-fallback"])
def backend(request, monkeypatch):
    """Run each test under both the scipy backend and the numpy fallback."""
    if request.param == "numpy-fallback":
        monkeypatch.setattr(sparse_mod, "FORCE_NUMPY_FALLBACK", True)
    elif not sparse_mod.HAVE_SCIPY:
        pytest.skip("scipy not installed")
    return request.param


def make_candidate(words, start1=0, end1=1, start2=None, end2=None, uid=0):
    start2 = len(words) - 2 if start2 is None else start2
    end2 = len(words) if end2 is None else end2
    return Candidate(
        uid=uid,
        span1=SpanView(words[start1], start1, end1, canonical_id="c1"),
        span2=SpanView(" ".join(words[start2:end2]), start2, end2, canonical_id="d1"),
        sentence=SentenceView(words=list(words), text=" ".join(words)),
    )


CANDIDATES = [
    make_candidate(["magnesium", "causes", "severe", "quake", "risk"], uid=0),
    make_candidate(["aspirin", "treats", "headache", "pain"], uid=1),
    make_candidate(["x", "y"], start1=0, end1=1, start2=1, end2=2, uid=2),
    make_candidate(["alpha", "beta", "gamma", "delta", "beta", "gamma"], uid=3),
]


# ------------------------------------------------------------------ transforms
def test_hashing_vectorizer_sparse_matches_dense(backend):
    vectorizer = HashingVectorizer(num_features=64).fit()
    sequences = [c.sentence.words for c in CANDIDATES]
    dense = vectorizer.transform(sequences)
    sparse = vectorizer.transform(sequences, sparse=True)
    assert isinstance(sparse, CSRFeatureMatrix)
    assert sparse.shape == dense.shape
    assert np.array_equal(sparse.toarray(), dense)
    # Zero-sum hash collisions are pruned, touched buckets are kept.
    assert sparse.nnz <= np.count_nonzero(dense) + 0  # no spurious entries
    assert sparse.nnz == np.count_nonzero(dense)


def test_relation_featurizer_sparse_matches_dense(backend):
    featurizer = RelationFeaturizer(num_features=128).fit()
    dense = featurizer.transform(CANDIDATES)
    sparse = featurizer.transform(CANDIDATES, sparse=True)
    assert sparse.shape == (len(CANDIDATES), featurizer.output_dim)
    assert np.array_equal(sparse.toarray(), dense)


def test_empty_transforms(backend):
    featurizer = RelationFeaturizer(num_features=32).fit()
    assert featurizer.transform([]).shape == (0, featurizer.output_dim)
    sparse = featurizer.transform([], sparse=True)
    assert sparse.shape == (0, featurizer.output_dim)
    assert sparse.nnz == 0
    vectorizer = HashingVectorizer(num_features=16).fit()
    assert vectorizer.transform([], sparse=True).shape == (0, 16)


# --------------------------------------------------------------------- algebra
def reference_matrix():
    featurizer = RelationFeaturizer(num_features=64).fit()
    return featurizer.transform(CANDIDATES), featurizer.transform(CANDIDATES, sparse=True)


def test_matvec_and_rmatvec(backend):
    dense, sparse = reference_matrix()
    rng = np.random.default_rng(0)
    w = rng.normal(size=dense.shape[1])
    v = rng.normal(size=dense.shape[0])
    assert np.allclose(sparse @ w, dense @ w)
    assert np.allclose(sparse.T @ v, dense.T @ v)
    assert sparse.T.shape == (dense.shape[1], dense.shape[0])


def test_row_selection(backend):
    dense, sparse = reference_matrix()
    idx = np.array([2, 0, 3])
    assert np.array_equal(sparse[idx].toarray(), dense[idx])
    mask = np.array([True, False, True, False])
    assert np.array_equal(sparse[mask].toarray(), dense[mask])


def test_shape_validation():
    with pytest.raises(ConfigurationError):
        CSRFeatureMatrix(np.array([0, 1]), np.array([5]), np.array([1.0]), (1, 3))
    with pytest.raises(ConfigurationError):
        CSRFeatureMatrix(np.array([0, 1, 1]), np.array([0]), np.array([1.0]), (1, 3))
    dense, sparse = reference_matrix()
    with pytest.raises(ConfigurationError):
        sparse @ np.zeros(3)
    with pytest.raises(ConfigurationError):
        sparse.rmatvec(np.zeros(3))


def test_from_dense_round_trip(backend):
    dense, _ = reference_matrix()
    assert np.array_equal(CSRFeatureMatrix.from_dense(dense).toarray(), dense)


def test_as_float_features_dispatch(backend):
    dense, sparse = reference_matrix()
    assert as_float_features(sparse) is sparse
    out = as_float_features(dense.astype(np.float32))
    assert isinstance(out, np.ndarray) and out.dtype == np.float64
    if sparse_mod.HAVE_SCIPY:
        converted = as_float_features(sparse.to_scipy())
        assert isinstance(converted, CSRFeatureMatrix)
        assert np.array_equal(converted.toarray(), dense)


# -------------------------------------------------------------------- end model
def test_logistic_regression_sparse_matches_dense(backend):
    dense, sparse = reference_matrix()
    rng = np.random.default_rng(1)
    soft = rng.random(dense.shape[0])
    dense_model = NoiseAwareLogisticRegression(epochs=4, seed=0).fit(dense, soft)
    sparse_model = NoiseAwareLogisticRegression(epochs=4, seed=0).fit(sparse, soft)
    assert np.allclose(dense_model.weights, sparse_model.weights, atol=1e-8)
    assert np.isclose(dense_model.bias, sparse_model.bias, atol=1e-8)
    assert np.allclose(
        dense_model.predict_proba(dense), sparse_model.predict_proba(sparse), atol=1e-8
    )


def test_mlp_densifies_sparse_features(backend):
    # Models without a sparse math path accept CSR inputs by densifying.
    from repro.discriminative import NoiseAwareMLP

    dense, sparse = reference_matrix()
    soft = np.random.default_rng(2).random(dense.shape[0])
    dense_model = NoiseAwareMLP(hidden_sizes=(8,), epochs=2, seed=0).fit(dense, soft)
    sparse_model = NoiseAwareMLP(hidden_sizes=(8,), epochs=2, seed=0).fit(sparse, soft)
    assert np.allclose(
        dense_model.predict_proba(dense), sparse_model.predict_proba(sparse), atol=1e-10
    )


def test_pipeline_sparse_features_end_to_end():
    from repro.datasets.base import load_task
    from repro.pipeline.snorkel import PipelineConfig, SnorkelPipeline

    task = load_task("cdr", scale=0.05, seed=0)
    dense_result = SnorkelPipeline(config=PipelineConfig(seed=0)).run(task)
    sparse_result = SnorkelPipeline(
        config=PipelineConfig(seed=0, sparse_features=True, applier_backend="threads",
                              applier_workers=2)
    ).run(task)
    assert np.array_equal(
        dense_result.label_matrix.values, sparse_result.label_matrix.values
    )
    assert np.allclose(
        dense_result.training_probs, sparse_result.training_probs, atol=1e-10
    )
    assert np.isclose(
        dense_result.discriminative_f1, sparse_result.discriminative_f1, atol=1e-8
    )
