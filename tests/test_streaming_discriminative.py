"""Differential suite for the out-of-core discriminative stage.

Discipline borrowed from coverage-guided differential DBMS fuzzing: every
streaming/vectorized path must be *value-identical* (here: ≤ 1e-8, and in
most cases bit-identical) to its materialized reference path on randomized
workloads.  Pinned down here:

* engine-routed featurization (:func:`featurize_stream`, and the fused
  :meth:`LFApplier.apply_with_features`) against ``transform`` — across
  executor backends, chunk sizes, and sparse/dense output;
* minibatch streaming training (``fit_stream``) against materialized
  ``fit(..., shuffle=False)`` for the logistic, softmax, and MLP end
  models — across block chunkings and storage kinds;
* the end-to-end ``SnorkelPipeline(streaming=True)`` against the default
  materialized run, binary (k=2) and categorical (k=3);
* the featurizer fitted-state regression: ``transform`` before ``fit``
  raises :class:`NotFittedError` instead of silently emitting misaligned
  columns.
"""

import numpy as np
import pytest

from repro.datasets.base import load_task
from repro.datasets.synthetic import (
    build_multiclass_task,
    stream_text_candidates,
    stream_text_gold,
    text_vote_lfs,
)
from repro.discriminative import (
    CSRFeatureMatrix,
    HashingVectorizer,
    NoiseAwareLogisticRegression,
    NoiseAwareMLP,
    RelationFeaturizer,
)
from repro.discriminative.base import iter_rebatched
from repro.discriminative.softmax import NoiseAwareSoftmaxRegression
from repro.discriminative.streaming import featurize_stream
from repro.exceptions import ConfigurationError, NotFittedError
from repro.labeling.applier import LFApplier
from repro.pipeline.snorkel import PipelineConfig, SnorkelPipeline

BACKENDS = [("sequential", 1), ("threads", 2), ("processes", 2)]

NUM_LFS = 8


def text_candidates(num_points, seed=0, cardinality=2):
    return list(
        stream_text_candidates(
            num_points=num_points, num_lfs=NUM_LFS, cardinality=cardinality, seed=seed
        )
    )


@pytest.fixture(scope="module")
def corpus():
    return text_candidates(157, seed=0)


@pytest.fixture(scope="module")
def featurizer():
    return RelationFeaturizer(num_features=128).fit()


# --------------------------------------------------------- streaming featurization
@pytest.mark.parametrize("backend,workers", BACKENDS)
@pytest.mark.parametrize("chunk_size", [13, 64, 500])
def test_featurize_stream_bit_identical(corpus, featurizer, backend, workers, chunk_size):
    reference = featurizer.transform(corpus, sparse=True)
    streamed = featurize_stream(
        featurizer,
        iter(corpus),  # generator input: the candidate list is never handed over
        chunk_size=chunk_size,
        backend=backend,
        num_workers=workers,
    )
    assert streamed.shape == reference.shape
    assert np.array_equal(streamed.indptr, reference.indptr)
    assert np.array_equal(streamed.indices, reference.indices)
    assert np.array_equal(streamed.data, reference.data)


def test_featurize_stream_matches_dense(corpus, featurizer):
    dense = featurizer.transform(corpus)
    streamed = featurize_stream(featurizer, iter(corpus), chunk_size=40)
    assert np.array_equal(streamed.toarray(), dense)


@pytest.mark.parametrize("backend,workers", BACKENDS)
def test_apply_with_features_fused_pass(corpus, featurizer, backend, workers):
    lfs = text_vote_lfs(NUM_LFS)
    applier = LFApplier(lfs, chunk_size=29, backend=backend, num_workers=workers)
    label_matrix, blocks = applier.apply_with_features(iter(corpus), featurizer, sparse=True)
    reference_labels = LFApplier(lfs).apply(corpus)
    assert np.array_equal(label_matrix.values, reference_labels.values)
    assert applier.last_report.num_candidates == len(corpus)
    stacked = CSRFeatureMatrix.vstack(blocks)
    reference_features = featurizer.transform(corpus, sparse=True)
    assert np.array_equal(stacked.toarray(), reference_features.toarray())
    # Block boundaries follow the chunking: all but the last are chunk-sized.
    assert [b.shape[0] for b in blocks[:-1]] == [29] * (len(blocks) - 1)


def test_featurize_stream_requires_fitted(corpus):
    unfitted = RelationFeaturizer(num_features=64)
    with pytest.raises(NotFittedError):
        featurize_stream(unfitted, iter(corpus))


# ------------------------------------------------------------------- rebatching
def blocks_of(features, targets, sizes):
    out, start = [], 0
    for size in sizes:
        out.append((features.row_range(start, start + size), targets[start : start + size]))
        start += size
    assert start == features.shape[0]
    return out


def test_rebatching_is_chunking_invariant(corpus, featurizer):
    features = featurizer.transform(corpus, sparse=True)
    targets = np.random.default_rng(0).random(features.shape[0])
    m = features.shape[0]
    chunkings = [[m], [50, 50, 57], [13] * 12 + [1], [1] * m]
    reference = list(iter_rebatched(blocks_of(features, targets, chunkings[0]), 32))
    for sizes in chunkings[1:]:
        batches = list(iter_rebatched(blocks_of(features, targets, sizes), 32))
        assert len(batches) == len(reference)
        for (xa, ya), (xb, yb) in zip(reference, batches):
            assert np.array_equal(xa.toarray(), xb.toarray())
            assert np.array_equal(ya, yb)


def test_rebatched_batches_are_exact_slices(corpus, featurizer):
    features = featurizer.transform(corpus, sparse=True)
    targets = np.arange(features.shape[0], dtype=float)
    batches = list(iter_rebatched(blocks_of(features, targets, [40, 40, 77]), 50))
    sizes = [y.size for _, y in batches]
    assert sizes == [50, 50, 50, 7]
    assert np.array_equal(np.concatenate([y for _, y in batches]), targets)


# ------------------------------------------------------------- streaming training
def feature_blocks(features, targets, block_size):
    sizes = []
    remaining = features.shape[0]
    while remaining > 0:
        sizes.append(min(block_size, remaining))
        remaining -= sizes[-1]
    return blocks_of(features, targets, sizes)


@pytest.mark.parametrize("block_size", [9, 64, 157])
def test_logistic_fit_stream_identical_to_materialized(corpus, featurizer, block_size):
    features = featurizer.transform(corpus, sparse=True)
    soft = np.random.default_rng(1).random(features.shape[0])
    reference = NoiseAwareLogisticRegression(epochs=7, shuffle=False, seed=0).fit(features, soft)
    streamed = NoiseAwareLogisticRegression(epochs=7, shuffle=False, seed=0).fit_stream(
        feature_blocks(features, soft, block_size)
    )
    assert np.array_equal(reference.weights, streamed.weights)
    assert reference.bias == streamed.bias
    assert reference.loss_history == streamed.loss_history


def test_logistic_fit_stream_dense_blocks(corpus, featurizer):
    dense = featurizer.transform(corpus)
    soft = np.random.default_rng(2).random(dense.shape[0])
    reference = NoiseAwareLogisticRegression(epochs=5, shuffle=False, seed=0).fit(dense, soft)
    blocks = [(dense[i : i + 31], soft[i : i + 31]) for i in range(0, dense.shape[0], 31)]
    streamed = NoiseAwareLogisticRegression(epochs=5, shuffle=False, seed=0).fit_stream(blocks)
    assert np.abs(reference.weights - streamed.weights).max() < 1e-8
    assert np.allclose(reference.predict_proba(dense), streamed.predict_proba(dense), atol=1e-8)


def test_logistic_fit_stream_class_balance(corpus, featurizer):
    features = featurizer.transform(corpus, sparse=True)
    soft = np.random.default_rng(3).random(features.shape[0])
    reference = NoiseAwareLogisticRegression(
        epochs=4, class_balance=0.3, shuffle=False, seed=0
    ).fit(features, soft)
    streamed = NoiseAwareLogisticRegression(
        epochs=4, class_balance=0.3, shuffle=False, seed=0
    ).fit_stream(feature_blocks(features, soft, 25))
    # The streaming pre-pass accumulates the positive mass blockwise, so the
    # class-balance scale factors can differ from np.mean's pairwise sum in
    # the last ulp — value-identical, not bit-identical.
    assert np.abs(reference.weights - streamed.weights).max() < 1e-10


@pytest.mark.parametrize("block_size", [17, 80])
def test_softmax_fit_stream_identical_to_materialized(block_size):
    candidates = text_candidates(140, seed=4, cardinality=3)
    featurizer = RelationFeaturizer(num_features=96).fit()
    features = featurizer.transform(candidates, sparse=True)
    rng = np.random.default_rng(4)
    targets = rng.random((features.shape[0], 3))
    targets /= targets.sum(axis=1, keepdims=True)
    reference = NoiseAwareSoftmaxRegression(num_classes=3, epochs=6, shuffle=False, seed=0).fit(
        features, targets
    )
    streamed_model = NoiseAwareSoftmaxRegression(num_classes=3, epochs=6, shuffle=False, seed=0)
    streamed = streamed_model.fit_stream(
        feature_blocks(features, targets, block_size)
    )
    assert np.array_equal(reference.weights, streamed.weights)
    assert np.array_equal(reference.bias, streamed.bias)


def test_mlp_fit_stream_identical_to_materialized(corpus, featurizer):
    features = featurizer.transform(corpus, sparse=True)
    soft = np.random.default_rng(5).random(features.shape[0])
    reference = NoiseAwareMLP(hidden_sizes=(8,), epochs=3, shuffle=False, seed=0).fit(
        features, soft
    )
    streamed = NoiseAwareMLP(hidden_sizes=(8,), epochs=3, shuffle=False, seed=0).fit_stream(
        feature_blocks(features, soft, 21)
    )
    probe = featurizer.transform(text_candidates(31, seed=6))
    assert np.array_equal(reference.predict_proba(probe), streamed.predict_proba(probe))


def test_fit_stream_from_callable_source(corpus, featurizer):
    """A generator *factory* (re-featurize per epoch) is a valid block source."""
    soft = np.random.default_rng(6).random(len(corpus))

    def source():
        for start in range(0, len(corpus), 50):
            chunk = corpus[start : start + 50]
            yield featurizer.transform(chunk, sparse=True), soft[start : start + 50]

    features = featurizer.transform(corpus, sparse=True)
    reference = NoiseAwareLogisticRegression(epochs=3, shuffle=False, seed=0).fit(features, soft)
    streamed = NoiseAwareLogisticRegression(epochs=3, shuffle=False, seed=0).fit_stream(source)
    assert np.array_equal(reference.weights, streamed.weights)


def test_fit_stream_rejects_one_shot_iterators(corpus, featurizer):
    features = featurizer.transform(corpus, sparse=True)
    soft = np.zeros(features.shape[0])
    one_shot = iter(feature_blocks(features, soft, 50))
    with pytest.raises(ConfigurationError):
        NoiseAwareLogisticRegression(epochs=2).fit_stream(one_shot)


def test_fit_stream_rejects_empty_stream():
    with pytest.raises(ConfigurationError):
        NoiseAwareLogisticRegression().fit_stream([])


def test_fit_stream_rejects_explicit_shuffle(corpus, featurizer):
    """An explicitly demanded shuffled schedule cannot be silently dropped."""
    features = featurizer.transform(corpus, sparse=True)
    blocks = [(features, np.zeros(features.shape[0]))]
    for model in (
        NoiseAwareLogisticRegression(epochs=1, shuffle=True),
        NoiseAwareSoftmaxRegression(num_classes=3, epochs=1, shuffle=True),
        NoiseAwareMLP(hidden_sizes=(4,), epochs=1, shuffle=True),
    ):
        with pytest.raises(ConfigurationError):
            model.fit_stream(blocks)


def test_fit_stream_rejects_width_mismatch(corpus):
    a = RelationFeaturizer(num_features=64).fit().transform(corpus[:50], sparse=True)
    b = RelationFeaturizer(num_features=32).fit().transform(corpus[50:], sparse=True)
    soft = np.zeros(50)
    with pytest.raises(ConfigurationError):
        NoiseAwareLogisticRegression(epochs=1).fit_stream([(a, soft), (b, soft)])


def test_shuffled_fit_unchanged_by_refactor(corpus, featurizer):
    """shuffle=True (the default) keeps the historical per-epoch permutation."""
    features = featurizer.transform(corpus)
    soft = np.random.default_rng(7).random(features.shape[0])
    shuffled = NoiseAwareLogisticRegression(epochs=5, seed=0).fit(features, soft)
    ordered = NoiseAwareLogisticRegression(epochs=5, shuffle=False, seed=0).fit(features, soft)
    assert not np.array_equal(shuffled.weights, ordered.weights)


# ----------------------------------------------------------------- end-to-end
@pytest.mark.parametrize("backend,workers", BACKENDS)
def test_pipeline_streaming_identical_binary(backend, workers):
    task = load_task("cdr", scale=0.05, seed=0)
    dense = SnorkelPipeline(config=PipelineConfig(seed=0)).run(task)
    sparse = SnorkelPipeline(config=PipelineConfig(seed=0, sparse_features=True)).run(task)
    stream = SnorkelPipeline(
        config=PipelineConfig(
            seed=0,
            streaming=True,
            chunk_size=37,
            applier_backend=backend,
            applier_workers=workers,
        )
    ).run(task)
    assert np.array_equal(dense.label_matrix.values, stream.label_matrix.values)
    assert np.array_equal(dense.training_probs, stream.training_probs)
    # Bit-identical to the CSR-materialized path, ≤1e-8 to the dense one
    # (the only difference is dense vs sparse matvec summation order).
    assert np.array_equal(
        sparse.discriminative_model.weights, stream.discriminative_model.weights
    )
    assert np.abs(
        dense.discriminative_model.weights - stream.discriminative_model.weights
    ).max() < 1e-8
    featurizer = SnorkelPipeline().featurizer.fit()
    test_features = featurizer.transform(task.split_candidates("test"))
    assert np.allclose(
        dense.discriminative_model.predict_proba(test_features),
        stream.discriminative_model.predict_proba(test_features),
        atol=1e-8,
    )
    assert dense.generative_f1 == stream.generative_f1
    assert abs(dense.discriminative_f1 - stream.discriminative_f1) < 1e-8


@pytest.mark.parametrize("chunk_size", [23, 256])
def test_pipeline_streaming_identical_multiclass(chunk_size):
    task = build_multiclass_task(num_points=200, num_lfs=10, cardinality=3, seed=3)
    config = dict(seed=0, use_optimizer=False, generative_epochs=5, discriminative_epochs=8)
    base = SnorkelPipeline(config=PipelineConfig(**config)).run(task)
    stream = SnorkelPipeline(
        config=PipelineConfig(**config, streaming=True, chunk_size=chunk_size)
    ).run(task)
    assert np.array_equal(base.label_matrix.values, stream.label_matrix.values)
    assert np.array_equal(base.training_probs, stream.training_probs)
    # The softmax path densifies per minibatch: bit-identical end model.
    assert np.array_equal(
        base.discriminative_model.weights, stream.discriminative_model.weights
    )
    assert base.discriminative_f1 == stream.discriminative_f1


def test_pipeline_streaming_sparse_labels_end_to_end():
    task = load_task("cdr", scale=0.05, seed=0)
    default = SnorkelPipeline(config=PipelineConfig(seed=0, streaming=True)).run(task)
    sparse_labels = SnorkelPipeline(
        config=PipelineConfig(seed=0, streaming=True, sparse_labels=True, chunk_size=64)
    ).run(task)
    assert np.array_equal(default.label_matrix.values, sparse_labels.label_matrix.values)
    # Dense and sparse label-model storage agree to 1e-10 (not bitwise), so
    # the end models trained on those probs agree to the same tolerance.
    assert np.abs(default.training_probs - sparse_labels.training_probs).max() < 1e-10
    assert np.abs(
        default.discriminative_model.weights - sparse_labels.discriminative_model.weights
    ).max() < 1e-8


def test_run_streams_generator_fed():
    """A pure generator front-end: candidates never exist as a list."""
    lfs = text_vote_lfs(NUM_LFS)
    config = PipelineConfig(
        seed=0, streaming=True, chunk_size=64, generative_epochs=5, discriminative_epochs=6
    )
    result = SnorkelPipeline(lfs=lfs, config=config).run_streams(
        stream_text_candidates(num_points=300, num_lfs=NUM_LFS, seed=0),
        stream_text_candidates(num_points=90, num_lfs=NUM_LFS, seed=1),
        stream_text_gold(90, seed=1),
    )
    # Same run, materialized by hand for comparison.
    train = text_candidates(300, seed=0)
    test = text_candidates(90, seed=1)
    applier = LFApplier(lfs)
    reference_labels = applier.apply(train)
    assert np.array_equal(result.label_matrix.values, reference_labels.values)
    assert 0.0 <= result.discriminative_f1 <= 1.0
    assert result.task_name == "stream"
    assert set(result.timings) == {"lf_application", "label_modeling", "discriminative_training"}


def test_end_model_shuffle_restores_historical_schedule():
    task = load_task("cdr", scale=0.05, seed=0)
    shuffled = SnorkelPipeline(
        config=PipelineConfig(seed=0, end_model_shuffle=True)
    ).run(task)
    legacy = SnorkelPipeline(
        config=PipelineConfig(seed=0),
        discriminative_model=NoiseAwareLogisticRegression(epochs=40, shuffle=True, seed=0),
    ).run(task)
    assert np.array_equal(
        shuffled.discriminative_model.weights, legacy.discriminative_model.weights
    )
    with pytest.raises(ConfigurationError):
        PipelineConfig(streaming=True, end_model_shuffle=True)


def test_run_streams_requires_lfs():
    with pytest.raises(ConfigurationError):
        SnorkelPipeline(config=PipelineConfig(streaming=True)).run_streams(
            iter(()), iter(()), np.zeros(0)
        )


# ------------------------------------------------- featurizer fitted-state bugfix
def test_transform_before_fit_raises(corpus):
    featurizer = RelationFeaturizer(num_features=64)
    with pytest.raises(NotFittedError):
        featurizer.transform(corpus[:3])
    with pytest.raises(NotFittedError):
        featurizer.transform(corpus[:3], sparse=True)
    vectorizer = HashingVectorizer(num_features=32)
    with pytest.raises(NotFittedError):
        vectorizer.transform([["some", "words"]])
    # After fit, both paths work and agree.
    featurizer.fit()
    assert featurizer.transform(corpus[:3]).shape == (3, featurizer.output_dim)


def test_config_mutation_after_fit_raises(corpus):
    featurizer = RelationFeaturizer(num_features=64).fit()
    featurizer.num_features = 128  # would silently misalign every column
    with pytest.raises(ConfigurationError):
        featurizer.transform(corpus[:3])
    vectorizer = HashingVectorizer(num_features=32).fit()
    vectorizer.num_features = 64
    with pytest.raises(ConfigurationError):
        vectorizer.transform([["some", "words"]])


def test_fit_does_not_consume_generators():
    generator = stream_text_candidates(num_points=5, num_lfs=2, seed=0)
    RelationFeaturizer(num_features=16).fit(generator)
    assert len(list(generator)) == 5
