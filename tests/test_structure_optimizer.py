"""Tests for structure learning, elbow selection, the optimizer, and theory bounds."""

import numpy as np
import pytest

from repro.datasets.synthetic import generate_correlated_label_matrix, generate_label_matrix
from repro.exceptions import ConfigurationError
from repro.labelmodel import (
    ModelingStrategyOptimizer,
    StructureLearner,
    learn_structure,
    select_elbow_point,
)
from repro.labelmodel.elbow import select_elbow_point_kneedle
from repro.labelmodel.theory import (
    combined_upper_bound,
    high_density_upper_bound,
    low_density_upper_bound,
)


def test_structure_learner_finds_planted_correlations():
    data = generate_correlated_label_matrix(
        num_points=1200, num_independent=6, num_groups=4, group_size=2,
        propensity=0.5, copy_probability=0.95, seed=0,
    )
    learner = StructureLearner().fit(data.label_matrix)
    scores = learner.pair_scores()
    planted = [scores[pair] for pair in data.correlated_pairs]
    independent_pairs = [pair for pair in scores if pair not in set(data.correlated_pairs)]
    unplanted = [scores[pair] for pair in independent_pairs]
    assert np.mean(planted) > np.mean(unplanted)
    selected = learner.select(float(np.mean(unplanted) + 3 * np.std(unplanted)))
    assert set(data.correlated_pairs) & set(selected)


def test_structure_threshold_monotone():
    data = generate_correlated_label_matrix(num_points=400, seed=1)
    learner = StructureLearner().fit(data.label_matrix)
    few = learner.select(0.3)
    many = learner.select(0.01)
    assert len(many) >= len(few)


def test_learn_structure_one_shot():
    data = generate_correlated_label_matrix(num_points=300, seed=2)
    pairs = learn_structure(data.label_matrix, threshold=0.05)
    assert all(j < k for j, k in pairs)


def test_elbow_point_selection():
    thresholds = [0.5, 0.4, 0.3, 0.2, 0.1]
    counts = [0, 1, 2, 20, 200]
    elbow = select_elbow_point(thresholds, counts)
    assert elbow in (0.2, 0.1)
    kneedle = select_elbow_point_kneedle(thresholds, counts)
    assert min(thresholds) <= kneedle <= max(thresholds)


def test_elbow_point_errors():
    with pytest.raises(ConfigurationError):
        select_elbow_point([], [])
    with pytest.raises(ConfigurationError):
        select_elbow_point([0.1], [1, 2])


def test_optimizer_picks_mv_on_sparse_agreeing_matrix():
    data = generate_label_matrix(num_points=400, num_lfs=2, accuracy=0.95, propensity=0.05, seed=0)
    strategy = ModelingStrategyOptimizer(advantage_tolerance=0.05).choose(data.label_matrix)
    assert strategy.strategy == "MV"
    assert not strategy.use_generative_model


def test_optimizer_picks_gm_on_conflicting_matrix():
    data = generate_label_matrix(
        num_points=600, num_lfs=12, accuracy=[0.9] * 4 + [0.55] * 8, propensity=0.5, seed=1
    )
    strategy = ModelingStrategyOptimizer(advantage_tolerance=0.01).choose(data.label_matrix)
    assert strategy.strategy == "GM"
    assert strategy.correlation_threshold is not None
    assert strategy.sweep


def test_optimizer_without_correlation_learning():
    data = generate_label_matrix(num_points=300, num_lfs=8, propensity=0.5, seed=2)
    strategy = ModelingStrategyOptimizer(learn_correlations=False).choose(data.label_matrix)
    assert strategy.correlations == []


def test_theory_bounds_shapes():
    assert low_density_upper_bound(0.5, 0.75) == pytest.approx(0.25 * 0.75 * 0.25 * 4 * 0.25)
    assert low_density_upper_bound(0.0, 0.75) == 0.0
    assert high_density_upper_bound(100.0, 0.75, 0.5) < 0.01
    assert high_density_upper_bound(10.0, 0.4, 0.5) == 1.0
    low_regime = combined_upper_bound(0.2, 0.75, 0.1)
    high_regime = combined_upper_bound(200.0, 0.75, 0.1)
    mid_regime = combined_upper_bound(3.0, 0.75, 0.1)
    assert mid_regime >= min(low_regime, high_regime)
