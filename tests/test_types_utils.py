"""Tests for core types, RNG helpers, and text utilities."""

import numpy as np
import pytest

from repro.types import (
    ABSTAIN,
    NEGATIVE,
    POSITIVE,
    labels_to_probs,
    probs_to_labels,
    validate_ground_truth,
    validate_label_matrix,
)
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.textutils import contains_any, ngrams, split_sentences, tokenize, window


def test_label_constants():
    assert ABSTAIN == 0 and POSITIVE == 1 and NEGATIVE == -1


def test_validate_label_matrix_rejects_bad_values():
    with pytest.raises(ValueError):
        validate_label_matrix(np.array([[2, 0]]))
    with pytest.raises(ValueError):
        validate_label_matrix(np.array([1, 0, -1]))


def test_validate_ground_truth_rejects_abstain():
    with pytest.raises(ValueError):
        validate_ground_truth([1, 0, -1])


def test_probs_labels_roundtrip():
    probs = np.array([0.9, 0.1, 0.5])
    labels = probs_to_labels(probs, tie_value=NEGATIVE)
    assert labels.tolist() == [1, -1, -1]
    assert labels_to_probs([1, -1]).tolist() == [1.0, 0.0]


def test_ensure_rng_passthrough_and_seeding():
    rng = np.random.default_rng(0)
    assert ensure_rng(rng) is rng
    assert ensure_rng(5).integers(100) == ensure_rng(5).integers(100)


def test_spawn_rngs_independent_streams():
    children = spawn_rngs(0, 3)
    draws = [child.integers(1_000_000) for child in children]
    assert len(set(draws)) == 3


def test_tokenize_and_sentences():
    assert tokenize("a-b c") == ["a", "-", "b", "c"]
    assert split_sentences("One. Two.") == ["One.", "Two."]


def test_ngrams_and_window():
    assert list(ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]
    left, right = window(["a", "b", "c", "d"], 1, 3, 2)
    assert left == ["a"] and right == ["d"]
    assert contains_any(["The", "Drug"], ["drug"])
